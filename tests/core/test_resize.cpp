// Elastic resize: the movement-minimizing planner (propose_resize_layout /
// plan_resize) and the transactional Redistributor::resize_rebalance /
// resize_join protocol, plus the RebuildPolicy::auto_shrink recovery path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <numeric>
#include <random>
#include <span>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"
#include "test_util.hpp"

namespace {

using ddr::Chunk;
using ddr::OwnedLayout;
using ddr_test::box_to_chunk;
using ddr_test::fill_chunk;
using ddr_test::oracle_value;
using ddr_test::random_partition;

std::int64_t layout_volume(const std::vector<OwnedLayout>& owned) {
  std::int64_t v = 0;
  for (const OwnedLayout& chunks : owned)
    for (const Chunk& c : chunks) v += c.volume();
  return v;
}

/// Wraps a proposal as the owned side of a GlobalLayout so validate_owned
/// checks the planner's exclusivity + completeness invariant.
ddr::LayoutValidation validate_proposal(const std::vector<OwnedLayout>& owned) {
  ddr::GlobalLayout g;
  g.owned = owned;
  g.needed.resize(owned.size());
  return ddr::validate_owned(g);
}

TEST(ResizePlan, GrowBalancesToExactQuotas) {
  // 8 members each own a 16x8 slab of a 128x8 domain; grow to 12.
  std::vector<OwnedLayout> old_owned(8);
  for (int r = 0; r < 8; ++r)
    old_owned[static_cast<std::size_t>(r)] = {Chunk::d2(16, 8, 16 * r, 0)};
  const auto proposed = ddr::propose_resize_layout(old_owned, 12);
  ASSERT_EQ(proposed.size(), 12u);
  const std::int64_t total = 128 * 8;
  for (std::size_t i = 0; i < proposed.size(); ++i) {
    std::int64_t v = 0;
    for (const Chunk& c : proposed[i]) v += c.volume();
    const std::int64_t quota =
        total / 12 + (static_cast<std::int64_t>(i) < total % 12 ? 1 : 0);
    EXPECT_EQ(v, quota) << "member " << i;
  }
  const auto v = validate_proposal(proposed);
  EXPECT_TRUE(v.ok()) << v.detail;
}

TEST(ResizePlan, ShrinkFoldsRetiringMembersOntoKeepers) {
  std::vector<OwnedLayout> old_owned(16);
  for (int r = 0; r < 16; ++r)
    old_owned[static_cast<std::size_t>(r)] = {Chunk::d1(8, 8 * r)};
  const auto proposed = ddr::propose_resize_layout(old_owned, 8);
  ASSERT_EQ(proposed.size(), 8u);
  for (const OwnedLayout& chunks : proposed) {
    std::int64_t v = 0;
    for (const Chunk& c : chunks) v += c.volume();
    EXPECT_EQ(v, 16);
  }
  // Keepers keep their whole old chunk: it is below the new quota.
  for (int r = 0; r < 8; ++r) {
    const auto& mine = proposed[static_cast<std::size_t>(r)];
    ASSERT_FALSE(mine.empty());
    EXPECT_EQ(mine.front().box(), old_owned[static_cast<std::size_t>(r)][0].box());
  }
  const auto v = validate_proposal(proposed);
  EXPECT_TRUE(v.ok()) << v.detail;
}

TEST(ResizePlan, BalancedSameSizeProposalKeepsEverythingInPlace) {
  std::vector<OwnedLayout> old_owned(4);
  for (int r = 0; r < 4; ++r)
    old_owned[static_cast<std::size_t>(r)] = {Chunk::d3(4, 4, 4, 4 * r, 0, 0)};
  const auto proposed = ddr::propose_resize_layout(old_owned, 4);
  for (int r = 0; r < 4; ++r) {
    const auto k = static_cast<std::size_t>(r);
    ASSERT_EQ(proposed[k].size(), 1u);
    EXPECT_EQ(proposed[k][0].box(), old_owned[k][0].box());
  }
  const auto plan = ddr::plan_resize(old_owned, proposed, sizeof(float));
  EXPECT_EQ(plan.stats.moved_bytes, 0);
  EXPECT_EQ(plan.stats.kept_bytes, plan.stats.total_bytes);
}

TEST(ResizePlan, RandomizedProposalsStayExclusiveCompleteAndBalanced) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 40; ++iter) {
    ddr::Box domain;
    domain.ndims = 3;
    for (int d = 0; d < 3; ++d) {
      const auto k = static_cast<std::size_t>(d);
      domain.lo[k] = 0;
      domain.hi[k] = std::uniform_int_distribution<std::int64_t>(3, 9)(rng);
    }
    const int old_members = std::uniform_int_distribution<int>(1, 6)(rng);
    const auto boxes = random_partition(domain, old_members, rng);
    std::vector<OwnedLayout> old_owned(
        static_cast<std::size_t>(old_members));
    for (std::size_t i = 0; i < boxes.size(); ++i)
      old_owned[i % old_owned.size()].push_back(box_to_chunk(boxes[i]));
    const int new_members = std::uniform_int_distribution<int>(1, 9)(rng);

    const auto proposed = ddr::propose_resize_layout(old_owned, new_members);
    ASSERT_EQ(proposed.size(), static_cast<std::size_t>(new_members));
    const std::int64_t total = domain.volume();
    EXPECT_EQ(layout_volume(proposed), total);
    for (std::size_t i = 0; i < proposed.size(); ++i) {
      std::int64_t v = 0;
      for (const Chunk& c : proposed[i]) v += c.volume();
      const std::int64_t quota =
          total / new_members +
          (static_cast<std::int64_t>(i) < total % new_members ? 1 : 0);
      EXPECT_EQ(v, quota) << "iter " << iter << " member " << i;
    }
    const auto v = validate_proposal(proposed);
    EXPECT_TRUE(v.ok()) << "iter " << iter << ": " << v.detail;

    // Determinism: every member derives the identical proposal offline.
    EXPECT_EQ(proposed, ddr::propose_resize_layout(old_owned, new_members));

    const auto plan = ddr::plan_resize(old_owned, proposed, sizeof(float));
    EXPECT_EQ(plan.stats.kept_bytes + plan.stats.moved_bytes,
              plan.stats.total_bytes);
    EXPECT_LE(plan.stats.moved_bytes, plan.stats.naive_bytes);
  }
}

TEST(ResizePlan, MovementBeatsNaiveTwofoldOnThePaperShapes) {
  // The bench's strided3d-flavoured acceptance shapes: growing 8 -> 12 keeps
  // 2/3 of the domain in place, folding 16 -> 8 keeps exactly half — both at
  // least 2x less traffic than the naive full re-scatter.
  std::vector<OwnedLayout> grow8(8);
  for (int r = 0; r < 8; ++r)
    grow8[static_cast<std::size_t>(r)] = {Chunk::d3(24, 24, 3, 0, 0, 3 * r)};
  const auto grown = ddr::propose_resize_layout(grow8, 12);
  const auto gplan = ddr::plan_resize(grow8, grown, sizeof(float));
  EXPECT_GE(gplan.stats.naive_bytes, 2 * gplan.stats.moved_bytes);

  std::vector<OwnedLayout> fold16(16);
  for (int r = 0; r < 16; ++r)
    fold16[static_cast<std::size_t>(r)] = {Chunk::d3(24, 24, 3, 0, 0, 3 * r)};
  const auto folded = ddr::propose_resize_layout(fold16, 8);
  const auto fplan = ddr::plan_resize(fold16, folded, sizeof(float));
  EXPECT_GE(fplan.stats.naive_bytes, 2 * fplan.stats.moved_bytes);
}

TEST(ResizePlan, NodeAwareProposalShiftsMovedBytesIntraNodeAtEqualMovement) {
  // Fold 16 -> 8 under a node map that pairs receiver i with retiring donor
  // 15-i. The flat proposal hands receiver i donor 8+i's chunk (pool
  // order), which crosses nodes everywhere except the middle pair; the
  // node-aware proposal rotates each receiver's same-node donation to the
  // pool head instead. The cross-member byte total must be IDENTICAL — the
  // preference only re-routes donations — while the intra-node share goes
  // from near-zero to all of it.
  std::vector<OwnedLayout> old_owned(16);
  for (int r = 0; r < 16; ++r)
    old_owned[static_cast<std::size_t>(r)] = {Chunk::d1(8, 8 * r)};
  std::vector<int> node(16);
  for (int m = 0; m < 16; ++m)
    node[static_cast<std::size_t>(m)] = m < 8 ? m : 15 - m;

  const auto flat = ddr::propose_resize_layout(old_owned, 8);
  const auto aware = ddr::propose_resize_layout(old_owned, 8, &node);
  for (const auto* proposed : {&flat, &aware}) {
    const auto v = validate_proposal(*proposed);
    EXPECT_TRUE(v.ok()) << v.detail;
    EXPECT_EQ(layout_volume(*proposed), 128);
  }
  // Determinism extends to the node-aware variant.
  EXPECT_EQ(aware, ddr::propose_resize_layout(old_owned, 8, &node));

  const auto classify = [&](const std::vector<OwnedLayout>& proposed) {
    ddr::GlobalLayout g;
    g.owned = old_owned;
    g.needed.resize(16);
    for (std::size_t i = 0; i < proposed.size(); ++i)
      g.needed[i] = proposed[i];
    std::int64_t moved = 0, intra = 0;
    for (const auto& t : ddr::enumerate_transfers(g, sizeof(float))) {
      if (t.sender == t.receiver) continue;
      moved += t.bytes;
      if (node[static_cast<std::size_t>(t.sender)] ==
          node[static_cast<std::size_t>(t.receiver)])
        intra += t.bytes;
    }
    return std::pair<std::int64_t, std::int64_t>{moved, intra};
  };
  const auto [flat_moved, flat_intra] = classify(flat);
  const auto [aware_moved, aware_intra] = classify(aware);
  EXPECT_EQ(aware_moved, flat_moved);  // bytes moved never regress
  EXPECT_GT(aware_intra, flat_intra);
  EXPECT_EQ(aware_intra, aware_moved);  // every donation found its node here
}

TEST(ResizePlan, RejectsDegenerateInputs) {
  std::vector<OwnedLayout> ok{{Chunk::d1(4, 0)}};
  EXPECT_THROW((void)ddr::propose_resize_layout(ok, 0), ddr::Error);
  EXPECT_THROW((void)ddr::propose_resize_layout({}, 2), ddr::Error);
  std::vector<OwnedLayout> empty{{}};
  EXPECT_THROW((void)ddr::propose_resize_layout(empty, 2), ddr::Error);
  std::vector<OwnedLayout> mixed{{Chunk::d1(4, 0), Chunk::d2(2, 2, 4, 0)}};
  EXPECT_THROW((void)ddr::propose_resize_layout(mixed, 2), ddr::Error);
  EXPECT_THROW((void)ddr::plan_resize(ok, ok, 0), ddr::Error);
  EXPECT_THROW((void)ddr::plan_resize({}, {}, 4), ddr::Error);
}

// --- transactional resize over minimpi ---------------------------------------

/// Checks `data` holds the oracle values of `owned` (chunks packed
/// consecutively, x fastest).
void expect_oracle(const OwnedLayout& owned, std::span<const std::byte> data) {
  std::size_t off = 0;
  for (const Chunk& c : owned) {
    const std::vector<float> want = fill_chunk(c);
    ASSERT_LE(off + want.size() * sizeof(float), data.size());
    std::vector<float> got(want.size());
    std::memcpy(got.data(), data.data() + off, want.size() * sizeof(float));
    EXPECT_EQ(got, want);
    off += want.size() * sizeof(float);
  }
  EXPECT_EQ(off, data.size());
}

TEST(ResizeRebalance, GrowRebalancesAndJoinersGetOracleData) {
  mpi::RunOptions opts;
  opts.max_ranks = 4;
  std::atomic<int> committed{0};
  opts.joiner_main = [&](mpi::Comm& comm) {
    const auto out = ddr::Redistributor::resize_join(comm, sizeof(float));
    ASSERT_TRUE(out.committed);
    EXPECT_FALSE(out.retired);
    EXPECT_FALSE(out.owned.empty());
    expect_oracle(out.owned, out.data);
    committed.fetch_add(1);
  };
  mpi::run(
      2,
      [&](mpi::Comm& comm) {
        // 2 ranks own 32 elements of a 64-element row; grow to 4.
        const Chunk mine = Chunk::d1(32, 32 * comm.rank());
        const std::vector<float> data = fill_chunk(mine);
        ddr::Redistributor r(comm, sizeof(float));
        auto out = r.resize_rebalance(4, {mine},
                                      std::as_bytes(std::span(data)));
        ASSERT_TRUE(out.committed);
        EXPECT_FALSE(out.retired);
        ASSERT_TRUE(out.comm.valid());
        EXPECT_EQ(out.comm.size(), 4);
        EXPECT_EQ(out.attempts, 1);
        // Balanced: 16 elements each, survivors kept a prefix in place.
        std::int64_t v = 0;
        for (const Chunk& c : out.owned) v += c.volume();
        EXPECT_EQ(v, 16);
        expect_oracle(out.owned, out.data);
        // Movement-minimizing: half the domain stays put, so the plan moves
        // at most half of what the naive full re-scatter would.
        EXPECT_EQ(out.stats.kept_bytes + out.stats.moved_bytes,
                  out.stats.total_bytes);
        EXPECT_GE(out.stats.naive_bytes, 2 * out.stats.moved_bytes);
        // The Redistributor continues on the resized communicator.
        EXPECT_FALSE(r.is_setup());
        EXPECT_EQ(r.comm().trace_id(), out.comm.trace_id());
        committed.fetch_add(1);
      },
      opts);
  EXPECT_EQ(committed.load(), 4);
}

TEST(ResizeRebalance, ShrinkShipsRetiringData) {
  std::atomic<int> retired{0};
  std::atomic<int> kept{0};
  mpi::run(4, [&](mpi::Comm& comm) {
    const Chunk mine = Chunk::d2(8, 4, 8 * comm.rank(), 0);
    const std::vector<float> data = fill_chunk(mine);
    ddr::Redistributor r(comm, sizeof(float));
    auto out = r.resize_rebalance(2, {mine}, std::as_bytes(std::span(data)));
    ASSERT_TRUE(out.committed);
    if (comm.rank() >= 2) {
      EXPECT_TRUE(out.retired);
      EXPECT_FALSE(out.comm.valid());
      EXPECT_TRUE(out.owned.empty());
      EXPECT_TRUE(out.data.empty());
      retired.fetch_add(1);
      return;
    }
    EXPECT_FALSE(out.retired);
    ASSERT_TRUE(out.comm.valid());
    EXPECT_EQ(out.comm.size(), 2);
    std::int64_t v = 0;
    for (const Chunk& c : out.owned) v += c.volume();
    EXPECT_EQ(v, 64);  // 32x8 domain halved over 2 survivors
    expect_oracle(out.owned, out.data);
    EXPECT_GE(out.stats.naive_bytes, 2 * out.stats.moved_bytes);
    kept.fetch_add(1);
  });
  EXPECT_EQ(retired.load(), 2);
  EXPECT_EQ(kept.load(), 2);
}

TEST(ResizeRebalance, SameSizeRebalancesUnevenLoad) {
  mpi::run(2, [&](mpi::Comm& comm) {
    // Rank 0 owns 30 of 32 elements: a same-size resize levels the load.
    const Chunk mine =
        comm.rank() == 0 ? Chunk::d1(30, 0) : Chunk::d1(2, 30);
    const std::vector<float> data = fill_chunk(mine);
    ddr::Redistributor r(comm, sizeof(float));
    auto out = r.resize_rebalance(2, {mine}, std::as_bytes(std::span(data)));
    ASSERT_TRUE(out.committed);
    std::int64_t v = 0;
    for (const Chunk& c : out.owned) v += c.volume();
    EXPECT_EQ(v, 16);
    expect_oracle(out.owned, out.data);
  });
}

TEST(ResizeRebalance, GrowTargetClampsToSpawnableCapacity) {
  mpi::RunOptions opts;
  opts.max_ranks = 3;  // only one dormant slot
  opts.joiner_main = [](mpi::Comm& comm) {
    const auto out = ddr::Redistributor::resize_join(comm, sizeof(float));
    EXPECT_TRUE(out.committed);
  };
  mpi::run(
      2,
      [&](mpi::Comm& comm) {
        const Chunk mine = Chunk::d1(12, 12 * comm.rank());
        const std::vector<float> data = fill_chunk(mine);
        ddr::Redistributor r(comm, sizeof(float));
        // Asking for 8 members clamps to the 3 that can exist.
        auto out = r.resize_rebalance(8, {mine},
                                      std::as_bytes(std::span(data)));
        ASSERT_TRUE(out.committed);
        ASSERT_TRUE(out.comm.valid());
        EXPECT_EQ(out.comm.size(), 3);
        std::int64_t v = 0;
        for (const Chunk& c : out.owned) v += c.volume();
        EXPECT_EQ(v, 8);
        expect_oracle(out.owned, out.data);
      },
      opts);
}

TEST(ResizeRebalance, PhaseHookSeesTheProtocolPhasesInOrder) {
  mpi::run(2, [&](mpi::Comm& comm) {
    const Chunk mine = Chunk::d1(8, 8 * comm.rank());
    const std::vector<float> data = fill_chunk(mine);
    std::vector<std::string> phases;
    ddr::ResizeOptions ropt;
    ropt.phase_hook = [&](const char* p) { phases.emplace_back(p); };
    ddr::Redistributor r(comm, sizeof(float));
    auto out =
        r.resize_rebalance(2, {mine}, std::as_bytes(std::span(data)), ropt);
    ASSERT_TRUE(out.committed);
    const std::vector<std::string> want{"rendezvous", "plan", "transfer",
                                        "commit"};
    EXPECT_EQ(phases, want);
  });
}

TEST(ResizeRebalance, RejectsDegenerateArguments) {
  mpi::run(1, [&](mpi::Comm& comm) {
    const Chunk mine = Chunk::d1(4, 0);
    const std::vector<float> data = fill_chunk(mine);
    ddr::Redistributor r(comm, sizeof(float));
    EXPECT_THROW((void)r.resize_rebalance(0, {mine},
                                          std::as_bytes(std::span(data))),
                 ddr::Error);
    ddr::ResizeOptions ropt;
    ropt.max_attempts = 0;
    EXPECT_THROW((void)r.resize_rebalance(1, {mine},
                                          std::as_bytes(std::span(data)),
                                          ropt),
                 ddr::Error);
  });
}

TEST(RebuildPolicy, CommLessRebuildRequiresAutoShrinkOptIn) {
  mpi::run(2, [&](mpi::Comm& comm) {
    const Chunk mine = Chunk::d1(8, 8 * comm.rank());
    ddr::Redistributor r(comm, sizeof(float));
    r.setup({mine}, Chunk::d1(16, 0));  // default policy: manual
    EXPECT_THROW(r.rebuild({mine}, Chunk::d1(16, 0)), ddr::Error);
  });
}

TEST(RebuildPolicy, AutoShrinkRebuildHealsAndRemaps) {
  mpi::run(2, [&](mpi::Comm& comm) {
    const Chunk mine = Chunk::d1(8, 8 * comm.rank());
    const std::vector<float> data = fill_chunk(mine);
    ddr::SetupOptions sopt;
    sopt.rebuild_policy = ddr::RebuildPolicy::auto_shrink;
    ddr::Redistributor r(comm, sizeof(float));
    r.setup({mine}, Chunk::d1(16, 0), sopt);
    // No deaths: the self-healing rebuild is a fresh comm + remap. Swap the
    // needed side so the rebuild visibly takes effect.
    const Chunk flipped = Chunk::d1(8, 8 * (1 - comm.rank()));
    r.rebuild({mine}, flipped);
    ASSERT_TRUE(r.is_setup());
    std::vector<float> out(8, -1.0f);
    r.redistribute(std::as_bytes(std::span(data)),
                   std::as_writable_bytes(std::span(out)));
    EXPECT_EQ(out, fill_chunk(flipped));
  });
}

}  // namespace
