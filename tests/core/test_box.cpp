// Unit tests for the integer box algebra underlying the DDR mapping.

#include <gtest/gtest.h>

#include "ddr/box.hpp"

namespace {

using ddr::Box;
using ddr::bounding_box;
using ddr::intersect;
using ddr::overlaps;

Box box2(std::int64_t x0, std::int64_t x1, std::int64_t y0, std::int64_t y1) {
  Box b;
  b.ndims = 2;
  b.lo = {x0, y0, 0};
  b.hi = {x1, y1, 1};
  return b;
}

TEST(Box, FromDimsOffsets) {
  const int dims[] = {8, 1}, offs[] = {0, 3};
  const Box b = Box::from_dims_offsets(2, dims, offs);
  EXPECT_EQ(b.ndims, 2);
  EXPECT_EQ(b.lo[0], 0);
  EXPECT_EQ(b.hi[0], 8);
  EXPECT_EQ(b.lo[1], 3);
  EXPECT_EQ(b.hi[1], 4);
  EXPECT_EQ(b.volume(), 8);
}

TEST(Box, VolumeAndExtent) {
  const Box b = box2(2, 6, 1, 4);
  EXPECT_EQ(b.extent(0), 4);
  EXPECT_EQ(b.extent(1), 3);
  EXPECT_EQ(b.volume(), 12);
  EXPECT_FALSE(b.empty());
}

TEST(Box, EmptyWhenDegenerateDimension) {
  const Box b = box2(2, 2, 0, 5);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.volume(), 0);
}

TEST(Box, IntersectOverlapping) {
  const Box r = intersect(box2(0, 4, 0, 4), box2(2, 6, 1, 3));
  EXPECT_EQ(r, box2(2, 4, 1, 3));
  EXPECT_EQ(r.volume(), 4);
}

TEST(Box, IntersectDisjointIsEmpty) {
  const Box r = intersect(box2(0, 2, 0, 2), box2(5, 7, 5, 7));
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(overlaps(box2(0, 2, 0, 2), box2(5, 7, 5, 7)));
}

TEST(Box, TouchingEdgesDoNotOverlap) {
  // Half-open intervals: [0,4) and [4,8) share no element.
  EXPECT_FALSE(overlaps(box2(0, 4, 0, 4), box2(4, 8, 0, 4)));
}

TEST(Box, IntersectIsCommutative) {
  const Box a = box2(0, 5, 0, 5), b = box2(3, 8, 2, 4);
  EXPECT_EQ(intersect(a, b), intersect(b, a));
}

TEST(Box, ContainsSelfAndSub) {
  const Box a = box2(0, 8, 0, 8);
  EXPECT_TRUE(a.contains(a));
  EXPECT_TRUE(a.contains(box2(2, 4, 3, 5)));
  EXPECT_FALSE(a.contains(box2(6, 10, 0, 2)));
  EXPECT_TRUE(a.contains(box2(3, 3, 0, 0)));  // empty box always contained
}

TEST(Box, BoundingBox) {
  const Box b = bounding_box(box2(0, 2, 0, 2), box2(5, 7, 6, 8));
  EXPECT_EQ(b, box2(0, 7, 0, 8));
}

TEST(Box, BoundingBoxIgnoresEmpty) {
  const Box a = box2(1, 4, 1, 4);
  const Box e = box2(0, 0, 0, 0);
  EXPECT_EQ(bounding_box(a, e), a);
  EXPECT_EQ(bounding_box(e, a), a);
}

TEST(Box, OneDimensional) {
  const int dims[] = {10}, offs[] = {5};
  const Box b = Box::from_dims_offsets(1, dims, offs);
  EXPECT_EQ(b.volume(), 10);
  const int dims2[] = {4}, offs2[] = {12};
  const Box c = Box::from_dims_offsets(1, dims2, offs2);
  const Box r = intersect(b, c);
  EXPECT_EQ(r.lo[0], 12);
  EXPECT_EQ(r.hi[0], 15);
}

TEST(Box, ThreeDimensionalVolume) {
  const int dims[] = {4, 5, 6}, offs[] = {1, 2, 3};
  const Box b = Box::from_dims_offsets(3, dims, offs);
  EXPECT_EQ(b.volume(), 120);
  EXPECT_EQ(b.lo[2], 3);
  EXPECT_EQ(b.hi[2], 9);
}

TEST(Box, LargeFullScaleVolumesDoNotOverflow) {
  // The paper's artificial data set: 4096 x 2048 x 4096 elements (2^35).
  const int dims[] = {4096, 2048, 4096}, offs[] = {0, 0, 0};
  const Box b = Box::from_dims_offsets(3, dims, offs);
  EXPECT_EQ(b.volume(), std::int64_t{1} << 35);
}

TEST(Box, DescribeIsReadable) {
  EXPECT_EQ(box2(0, 4, 2, 6).describe(), "[0:4,2:6)");
}

}  // namespace
