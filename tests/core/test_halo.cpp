// Tests for the HaloExchanger convenience API: block decompositions, padded
// regions with edge clamping, correctness of exchanged ghost cells in
// 1/2/3-D, reuse across steps, and a distributed stencil verified against a
// serial run.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "ddr/error.hpp"
#include "ddr/halo.hpp"
#include "minimpi/minimpi.hpp"
#include "test_util.hpp"

namespace {

using ddr::BlockDecomposition;
using ddr::Chunk;
using ddr::HaloExchanger;
using ddr_test::fill_chunk;
using ddr_test::oracle_value;

BlockDecomposition decomp2d(int nx, int ny, int gx, int gy) {
  BlockDecomposition d;
  d.ndims = 2;
  d.domain = {nx, ny, 1};
  d.grid = {gx, gy, 1};
  return d;
}

TEST(BlockDecomposition, CoordsAndBlocks) {
  const BlockDecomposition d = decomp2d(10, 6, 3, 2);
  EXPECT_EQ(d.nranks(), 6);
  EXPECT_EQ(d.coords_of(0), (std::array<int, 3>{0, 0, 0}));
  EXPECT_EQ(d.coords_of(4), (std::array<int, 3>{1, 1, 0}));
  // 10 over 3: 4, 3, 3.
  EXPECT_EQ(d.block_of(0).dims[0], 4);
  EXPECT_EQ(d.block_of(1).dims[0], 3);
  EXPECT_EQ(d.block_of(1).offsets[0], 4);
  EXPECT_EQ(d.block_of(5).offsets[1], 3);
}

TEST(BlockDecomposition, BlocksTileDomain) {
  const BlockDecomposition d = decomp2d(13, 7, 4, 2);
  ddr::GlobalLayout layout;
  for (int r = 0; r < d.nranks(); ++r) {
    layout.owned.push_back({d.block_of(r)});
    layout.needed.push_back({d.block_of(r)});
  }
  EXPECT_TRUE(ddr::validate_owned(layout).ok());
  EXPECT_EQ(layout.domain().volume(), 13 * 7);
}

TEST(HaloExchange, PaddedRegionClampsAtEdges) {
  mpi::run(4, [](mpi::Comm& comm) {
    const BlockDecomposition d = decomp2d(8, 8, 2, 2);
    const HaloExchanger h(comm, d, /*halo=*/1, sizeof(float));
    const Chunk& p = h.padded();
    const Chunk& b = h.block();
    // Interior sides grow by 1; domain-boundary sides don't.
    for (int dim = 0; dim < 2; ++dim) {
      const auto k = static_cast<std::size_t>(dim);
      EXPECT_GE(p.offsets[k], 0);
      EXPECT_LE(p.offsets[k] + p.dims[k], 8);
      EXPECT_LE(p.offsets[k], b.offsets[k]);
      EXPECT_GE(p.offsets[k] + p.dims[k], b.offsets[k] + b.dims[k]);
    }
    EXPECT_EQ(p.dims[0], 5);  // 4 + 1 interior ghost layer
    EXPECT_EQ(p.dims[1], 5);
  });
}

void run_halo_oracle(int ndims, std::array<int, 3> domain,
                     std::array<int, 3> grid, int halo) {
  BlockDecomposition d;
  d.ndims = ndims;
  d.domain = domain;
  d.grid = grid;
  mpi::run(d.nranks(), [&](mpi::Comm& comm) {
    const HaloExchanger h(comm, d, halo, sizeof(float));
    const std::vector<float> block = fill_chunk(h.block());
    std::vector<float> padded(h.padded_bytes() / sizeof(float), -1.0f);
    h.exchange(std::as_bytes(std::span<const float>(block)),
               std::as_writable_bytes(std::span<float>(padded)));

    const Chunk& p = h.padded();
    std::size_t i = 0;
    const auto dim = [&](int dd) {
      return dd < p.ndims ? p.dims[static_cast<std::size_t>(dd)] : 1;
    };
    const auto off = [&](int dd) {
      return dd < p.ndims ? p.offsets[static_cast<std::size_t>(dd)] : 0;
    };
    for (int z = 0; z < dim(2); ++z)
      for (int y = 0; y < dim(1); ++y)
        for (int x = 0; x < dim(0); ++x) {
          ASSERT_EQ(padded[i],
                    oracle_value(x + off(0), y + off(1), z + off(2)))
              << "rank " << comm.rank() << " ndims " << ndims << " at (" << x
              << "," << y << "," << z << ")";
          ++i;
        }
  });
}

TEST(HaloExchange, OracleCorrectness1D) {
  run_halo_oracle(1, {24, 1, 1}, {4, 1, 1}, 2);
}
TEST(HaloExchange, OracleCorrectness2D) {
  run_halo_oracle(2, {12, 9, 1}, {3, 2, 1}, 1);
}
TEST(HaloExchange, OracleCorrectness3D) {
  run_halo_oracle(3, {8, 8, 8}, {2, 2, 2}, 1);
}
TEST(HaloExchange, WideHalo) { run_halo_oracle(2, {16, 16, 1}, {2, 2, 1}, 3); }
TEST(HaloExchange, ZeroHaloIsIdentity) {
  run_halo_oracle(2, {10, 10, 1}, {2, 2, 1}, 0);
}

TEST(HaloExchange, PeersAreGeometricNeighboursOnly) {
  mpi::run(8, [](mpi::Comm& comm) {
    BlockDecomposition d;
    d.ndims = 1;
    d.domain = {64, 1, 1};
    d.grid = {8, 1, 1};
    const HaloExchanger h(comm, d, 1, 4);
    // In 1-D each interior rank sends to exactly 2 neighbours.
    EXPECT_LE(h.stats().mean_send_peers, 2.0);
    EXPECT_GT(h.stats().mean_send_peers, 1.0);
  });
}

TEST(HaloExchange, ReusableAcrossSteps) {
  // exchange() with evolving data: ghost cells always track the sender.
  mpi::run(2, [](mpi::Comm& comm) {
    BlockDecomposition d;
    d.ndims = 1;
    d.domain = {8, 1, 1};
    d.grid = {2, 1, 1};
    const HaloExchanger h(comm, d, 1, sizeof(float));
    std::vector<float> block(4);
    std::vector<float> padded(h.padded_bytes() / sizeof(float));
    for (int step = 0; step < 3; ++step) {
      for (int i = 0; i < 4; ++i)
        block[static_cast<std::size_t>(i)] =
            static_cast<float>(100 * step + 4 * comm.rank() + i);
      h.exchange(std::as_bytes(std::span<const float>(block)),
                 std::as_writable_bytes(std::span<float>(padded)));
      // My ghost cell from the peer carries this step's value.
      const float ghost = comm.rank() == 0 ? padded[4] : padded[0];
      const float expect =
          static_cast<float>(100 * step + (comm.rank() == 0 ? 4 : 3));
      EXPECT_EQ(ghost, expect) << "step " << step;
    }
  });
}

TEST(HaloExchange, RejectsBadConfigurations) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& comm) {
                          const BlockDecomposition d = decomp2d(8, 8, 2, 2);
                          // 4-rank decomposition on a 2-rank communicator.
                          HaloExchanger h(comm, d, 1, 4);
                        }),
               ddr::Error);
  EXPECT_THROW(mpi::run(1,
                        [](mpi::Comm& comm) {
                          BlockDecomposition d;
                          d.ndims = 1;
                          d.domain = {8, 1, 1};
                          d.grid = {1, 1, 1};
                          HaloExchanger h(comm, d, -1, 4);
                        }),
               ddr::Error);
}

}  // namespace
