// Integration tests of the parallel TIFF loading strategies: all three must
// produce the identical brick, with the read counts and redistribution round
// counts the paper's analysis (§IV-A, Table III) predicts.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "ddr/error.hpp"
#include "loader/tiff_loader.hpp"
#include "minimpi/minimpi.hpp"
#include "tiff/phantom.hpp"

namespace {

using loader::LoadStats;
using loader::SeriesInfo;
using loader::Strategy;

class LoaderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process directory: ctest runs each test of this suite in its own
    // process, possibly concurrently, and they must not race on the series.
    dir_ = (std::filesystem::temp_directory_path() /
            ("ddr_loader_series." + std::to_string(getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    tiff::write_phantom_series(dir_, kW, kH, kD, 16);
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }

  static SeriesInfo series() {
    SeriesInfo s;
    s.dir = dir_;
    s.width = kW;
    s.height = kH;
    s.depth = kD;
    s.bytes_per_sample = 2;
    s.max_sample_value = 65535.0;
    return s;
  }

  static constexpr int kW = 24, kH = 16, kD = 12;
  static std::string dir_;
};

std::string LoaderTest::dir_;

TEST_F(LoaderTest, AllStrategiesProduceIdenticalBricks) {
  for (int nranks : {1, 4, 8}) {
    std::vector<std::vector<float>> results(3);
    int idx = 0;
    for (Strategy s : {Strategy::no_ddr, Strategy::ddr_round_robin,
                       Strategy::ddr_consecutive}) {
      std::vector<float> rank0;
      mpi::run(nranks, [&](mpi::Comm& comm) {
        const dvr::Brick b = loader::load_brick(comm, series(), s);
        if (comm.rank() == 0) rank0 = b.data;
      });
      results[static_cast<std::size_t>(idx++)] = std::move(rank0);
    }
    EXPECT_EQ(results[0], results[1]) << "no_ddr vs rr, P=" << nranks;
    EXPECT_EQ(results[0], results[2]) << "no_ddr vs consec, P=" << nranks;
    EXPECT_FALSE(results[0].empty());
  }
}

TEST_F(LoaderTest, BrickMatchesPhantomDirectly) {
  mpi::run(4, [&](mpi::Comm& comm) {
    const dvr::Brick b =
        loader::load_brick(comm, series(), Strategy::ddr_consecutive);
    // Spot-check a sample against the phantom function itself.
    const auto& c = b.chunk;
    const int lx = c.dims[0] / 2, ly = c.dims[1] / 2, lz = c.dims[2] / 2;
    const auto ref = tiff::phantom_slice(kW, kH, c.offsets[2] + lz, kD, 16);
    const double expect =
        ref.value(static_cast<std::uint32_t>(c.offsets[0] + lx),
                  static_cast<std::uint32_t>(c.offsets[1] + ly)) /
        65535.0;
    EXPECT_NEAR(b.sample(lx, ly, lz), expect, 1e-4);
  });
}

TEST_F(LoaderTest, DdrReadsEachImageExactlyOnceGlobally) {
  for (Strategy s : {Strategy::ddr_round_robin, Strategy::ddr_consecutive}) {
    std::atomic<int> total_reads{0};
    mpi::run(4, [&](mpi::Comm& comm) {
      LoadStats st;
      (void)loader::load_brick(comm, series(), s, nullptr, &st);
      total_reads.fetch_add(st.images_read);
    });
    EXPECT_EQ(total_reads.load(), kD) << to_string(s);
  }
}

TEST_F(LoaderTest, NoDdrReadsRedundantly) {
  // With a 2x2x1 brick grid (4 ranks over a shallow volume), every slice
  // intersects 4 bricks, so the baseline reads each image 4 times.
  std::atomic<int> total_reads{0};
  mpi::run(4, [&](mpi::Comm& comm) {
    LoadStats st;
    (void)loader::load_brick(comm, series(), Strategy::no_ddr, nullptr, &st);
    total_reads.fetch_add(st.images_read);
  });
  EXPECT_GT(total_reads.load(), kD);
}

TEST_F(LoaderTest, RoundCountsMatchTableIIIRule) {
  // rounds = ceil(depth / P) for round-robin, 1 for consecutive.
  mpi::run(4, [&](mpi::Comm& comm) {
    LoadStats st;
    (void)loader::load_brick(comm, series(), Strategy::ddr_round_robin,
                             nullptr, &st);
    EXPECT_EQ(st.redistribution_rounds, (kD + comm.size() - 1) / comm.size());
    LoadStats st2;
    (void)loader::load_brick(comm, series(), Strategy::ddr_consecutive,
                             nullptr, &st2);
    EXPECT_EQ(st2.redistribution_rounds, 1);
  });
}

TEST_F(LoaderTest, IoModelChargesVirtualTime) {
  const simnet::IoModel io;
  const mpi::RunResult res = mpi::run(2, [&](mpi::Comm& comm) {
    (void)loader::load_brick(comm, series(), Strategy::ddr_consecutive, &io);
  });
  // 6 slices x (open latency + bytes / bw) per rank at minimum.
  const double per_slice =
      io.read_time(static_cast<double>(series().slice_bytes()), 2, 1);
  EXPECT_GE(res.makespan(), 6 * per_slice);
}

TEST_F(LoaderTest, PreparedLoadIsReusable) {
  // Paper §III-C: the mapping survives across data updates; execute() twice
  // must give identical bricks without re-running setup.
  mpi::run(4, [&](mpi::Comm& comm) {
    const loader::PreparedLoad prepared(comm, series(),
                                        Strategy::ddr_round_robin);
    const dvr::Brick a = prepared.execute();
    const dvr::Brick b = prepared.execute();
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.chunk, prepared.brick_chunk());
  });
}

class StoreTest : public ::testing::Test {};

TEST(StoreTest, WriteThenReadRoundtrips) {
  // Every rank fabricates its brick of a synthetic volume, stores the
  // volume as a TIFF series via DDR, and a fresh load must reproduce it.
  const auto out_dir =
      (std::filesystem::temp_directory_path() / "ddr_store_rt").string();
  constexpr int kW = 16, kH = 12, kD = 8;
  auto sample = [](int x, int y, int z) {
    return static_cast<std::uint16_t>((x + 31 * y + 131 * z) % 60000);
  };

  for (Strategy s : {Strategy::ddr_consecutive, Strategy::ddr_round_robin}) {
    std::filesystem::remove_all(out_dir);
    std::filesystem::create_directories(out_dir);
    loader::SeriesInfo series;
    series.dir = out_dir;
    series.width = kW;
    series.height = kH;
    series.depth = kD;
    series.bytes_per_sample = 2;
    series.max_sample_value = 65535.0;

    std::atomic<int> writes{0};
    mpi::run(4, [&](mpi::Comm& comm) {
      const auto grid =
          dvr::brick_grid(comm.size(), {kW, kH, kD});
      const ddr::Chunk brick = dvr::brick_of(comm.rank(), grid, {kW, kH, kD});
      std::vector<std::byte> raw(static_cast<std::size_t>(brick.volume()) * 2);
      std::size_t i = 0;
      for (int z = 0; z < brick.dims[2]; ++z)
        for (int y = 0; y < brick.dims[1]; ++y)
          for (int x = 0; x < brick.dims[0]; ++x) {
            const std::uint16_t v = sample(
                x + brick.offsets[0], y + brick.offsets[1],
                z + brick.offsets[2]);
            std::memcpy(raw.data() + 2 * i++, &v, 2);
          }
      loader::LoadStats st;
      loader::store_volume(comm, series, brick, raw, s, nullptr, &st);
      writes.fetch_add(st.images_written);
      // Round-robin writers receive everything in ONE round (each rank owns
      // exactly one brick chunk).
      EXPECT_EQ(st.redistribution_rounds, 1);
    });
    EXPECT_EQ(writes.load(), kD) << to_string(s);

    // Verify every pixel of every written slice.
    for (int z = 0; z < kD; ++z) {
      const tiff::GrayImage img =
          tiff::read_file(tiff::slice_path(out_dir, z));
      ASSERT_EQ(img.info().width, static_cast<std::uint32_t>(kW));
      for (int y = 0; y < kH; ++y)
        for (int x = 0; x < kW; ++x)
          ASSERT_EQ(img.value(static_cast<std::uint32_t>(x),
                              static_cast<std::uint32_t>(y)),
                    sample(x, y, z))
              << to_string(s) << " slice " << z;
    }
  }
  std::filesystem::remove_all(out_dir);
}

TEST(StoreTest, NoDdrIsRejectedForWrites) {
  EXPECT_THROW(
      mpi::run(1,
               [](mpi::Comm& comm) {
                 loader::SeriesInfo series;
                 series.dir = "/tmp/unused";
                 series.width = 4;
                 series.height = 4;
                 series.depth = 2;
                 std::vector<std::byte> raw(4 * 4 * 2 * 4);
                 loader::store_volume(comm, series,
                                      ddr::Chunk::d3(4, 4, 2, 0, 0, 0), raw,
                                      Strategy::no_ddr);
               }),
      ddr::Error);
}

TEST(LoaderPlan, LayoutsAreValidAtFullPaperScale) {
  // The paper's artificial data set: 4096 slices of 4096x2048, 27..216
  // ranks. Pure geometry — no pixel data involved.
  for (int p : {27, 64, 125, 216}) {
    for (Strategy s : {Strategy::ddr_round_robin, Strategy::ddr_consecutive}) {
      const ddr::GlobalLayout layout =
          loader::plan_layout(p, 4096, 2048, 4096, s);
      EXPECT_EQ(layout.nranks(), p);
      const int expect_rounds =
          s == Strategy::ddr_consecutive ? 1 : (4096 + p - 1) / p;
      EXPECT_EQ(layout.rounds(), expect_rounds) << "P=" << p;
      // Completeness: total owned volume equals the domain.
      std::int64_t total = 0;
      for (const auto& rank_chunks : layout.owned)
        for (const auto& c : rank_chunks) total += c.volume();
      EXPECT_EQ(total, std::int64_t{4096} * 2048 * 4096);
    }
  }
}

TEST(LoaderPlan, TableIIIRoundCountsExact) {
  // Table III round counts for the round-robin method: 152, 64, 33, 19.
  const int expect[] = {152, 64, 33, 19};
  const int procs[] = {27, 64, 125, 216};
  for (int i = 0; i < 4; ++i) {
    const auto layout = loader::plan_layout(procs[i], 4096, 2048, 4096,
                                            Strategy::ddr_round_robin);
    EXPECT_EQ(layout.rounds(), expect[i]) << "P=" << procs[i];
  }
}

}  // namespace
