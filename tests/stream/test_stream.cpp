// In-transit streaming tests: the paper's Fig. 4 mapping (10 producers ->
// 4 consumers), near-square consumer rectangles (Fig. 5), frame transport
// across a split world, and the full receive-then-redistribute pipeline.

#include <gtest/gtest.h>

#include <span>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"
#include "stream/stream.hpp"

namespace {

using stream::Consumer;
using stream::Frame;
using stream::FrameHeader;
using stream::MNMapping;
using stream::Producer;

TEST(MNMapping, Figure4TenToFour) {
  // Fig. 4: "The first two analysis ranks receive data from 3 simulation
  // ranks, whereas the last two analysis ranks receive data from 2."
  const MNMapping m(10, 4);
  EXPECT_EQ(m.producers_of(0), (std::pair{0, 3}));
  EXPECT_EQ(m.producers_of(1), (std::pair{3, 6}));
  EXPECT_EQ(m.producers_of(2), (std::pair{6, 8}));
  EXPECT_EQ(m.producers_of(3), (std::pair{8, 10}));
  for (int p = 0; p < 10; ++p) {
    const auto [lo, hi] = m.producers_of(m.consumer_of(p));
    EXPECT_GE(p, lo);
    EXPECT_LT(p, hi);
  }
}

TEST(MNMapping, UniformWhenDivisible) {
  // The paper's production configuration: 128 sim ranks -> 32 viz ranks.
  const MNMapping m(128, 32);
  for (int c = 0; c < 32; ++c) {
    const auto [lo, hi] = m.producers_of(c);
    EXPECT_EQ(hi - lo, 4);
    EXPECT_EQ(lo, 4 * c);
  }
}

TEST(MNMapping, EveryProducerHasExactlyOneConsumer) {
  const std::pair<int, int> shapes[] = {{7, 3}, {9, 4}, {5, 5}, {13, 1}};
  for (const auto& [m, n] : shapes) {
    const MNMapping map(m, n);
    std::vector<int> hits(static_cast<std::size_t>(m), 0);
    for (int c = 0; c < n; ++c) {
      const auto [lo, hi] = map.producers_of(c);
      for (int p = lo; p < hi; ++p) ++hits[static_cast<std::size_t>(p)];
    }
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(MNMapping, RejectsBadShapes) {
  EXPECT_THROW(MNMapping(3, 4), stream::Error);
  EXPECT_THROW(MNMapping(4, 0), stream::Error);
}

TEST(ConsumerGrid, NearSquareRectangles) {
  // 32 consumers over the paper's smallest grid (3238 x 1295): cells of an
  // 8x4 grid are 405x324 — much squarer than any alternative.
  EXPECT_EQ(stream::consumer_grid(32, 3238, 1295), (std::array<int, 2>{8, 4}));
  // Square domain, square count.
  EXPECT_EQ(stream::consumer_grid(16, 1000, 1000), (std::array<int, 2>{4, 4}));
  // Wide domain prefers more columns.
  const auto g = stream::consumer_grid(8, 4000, 500);
  EXPECT_GT(g[0], g[1]);
}

TEST(ConsumerGrid, RectanglesTileTheDomain) {
  const int nx = 101, ny = 37;
  for (int n : {1, 4, 6, 12}) {
    const auto grid = stream::consumer_grid(n, nx, ny);
    ddr::GlobalLayout layout;
    for (int j = 0; j < n; ++j) {
      layout.owned.push_back({stream::consumer_rect(j, grid, nx, ny)});
      layout.needed.push_back({stream::consumer_rect(j, grid, nx, ny)});
    }
    EXPECT_TRUE(ddr::validate_owned(layout).ok()) << "n=" << n;
    EXPECT_EQ(layout.domain().volume(), static_cast<std::int64_t>(nx) * ny);
  }
}

TEST(Transport, FramesCrossTheSplitWorld) {
  // 4 producers + 2 consumers in one world; each producer streams one slab.
  mpi::run(6, [](mpi::Comm& world) {
    const int m = 4, n = 2;
    const bool is_producer = world.rank() < m;
    const MNMapping map(m, n);
    const int nx = 8;

    if (is_producer) {
      const int p = world.rank();
      Producer out(world, m + map.consumer_of(p));
      FrameHeader h;
      h.step = 7;
      h.y0 = 2 * p;
      h.ny = 2;
      h.nx = nx;
      std::vector<float> payload(static_cast<std::size_t>(h.ny) * nx,
                                 static_cast<float>(p));
      out.send_frame(h, payload);
    } else {
      const int c = world.rank() - m;
      const auto [lo, hi] = map.producers_of(c);
      std::vector<int> sources;
      for (int p = lo; p < hi; ++p) sources.push_back(p);
      Consumer in(world, sources);
      const std::vector<Frame> frames = in.receive_step();
      ASSERT_EQ(frames.size(), 2u);
      for (const Frame& f : frames) {
        EXPECT_EQ(f.header.step, 7);
        EXPECT_EQ(f.header.nx, nx);
        EXPECT_EQ(f.header.y0, 2 * f.producer_world_rank);
        for (float v : f.data)
          EXPECT_EQ(v, static_cast<float>(f.producer_world_rank));
      }
    }
  });
}

TEST(Transport, HeaderPayloadMismatchThrows) {
  mpi::run(2, [](mpi::Comm& world) {
    if (world.rank() == 0) {
      Producer out(world, 1);
      FrameHeader h;
      h.ny = 2;
      h.nx = 4;
      std::vector<float> tiny(3);
      EXPECT_THROW(out.send_frame(h, tiny), stream::Error);
      // Send a correct frame so the consumer does not hang.
      std::vector<float> ok(8, 1.0f);
      out.send_frame(h, ok);
    } else {
      Consumer in(world, {0});
      EXPECT_EQ(in.receive_step().size(), 1u);
    }
  });
}

TEST(Pipeline, SlicesToNearSquaresViaDdr) {
  // Full Fig. 5 path: 6 producer slabs stream into 2 consumers; each
  // consumer redistributes its received slabs into its near-square
  // rectangle with DDR over the analysis communicator.
  const int nx = 12, ny = 12;
  auto value = [](int x, int y) { return static_cast<float>(y * 100 + x); };

  mpi::run(8, [&](mpi::Comm& world) {
    const int m = 6, n = 2;
    const bool is_producer = world.rank() < m;
    const MNMapping map(m, n);
    mpi::Comm group = world.split(is_producer ? 0 : 1, world.rank());

    if (is_producer) {
      const int p = world.rank();
      const int rows = ny / m;
      FrameHeader h;
      h.step = 0;
      h.y0 = rows * p;
      h.ny = rows;
      h.nx = nx;
      std::vector<float> slab;
      for (int y = h.y0; y < h.y0 + rows; ++y)
        for (int x = 0; x < nx; ++x) slab.push_back(value(x, y));
      Producer out(world, m + map.consumer_of(p));
      out.send_frame(h, slab);
      return;
    }

    const int c = group.rank();
    const auto [lo, hi] = map.producers_of(c);
    std::vector<int> sources;
    for (int p = lo; p < hi; ++p) sources.push_back(p);
    Consumer in(world, sources);
    const std::vector<Frame> frames = in.receive_step();

    // DDR on the analysis communicator only (the paper's Fig. 5).
    const auto grid = stream::consumer_grid(n, nx, ny);
    const ddr::Chunk need = stream::consumer_rect(c, grid, nx, ny);
    ddr::Redistributor rd(group, sizeof(float));
    rd.setup(stream::frames_layout(frames), need);

    const std::vector<float> owned = stream::concat_frames(frames);
    std::vector<float> rect(static_cast<std::size_t>(need.volume()), -1.0f);
    rd.redistribute(std::as_bytes(std::span<const float>(owned)),
                    std::as_writable_bytes(std::span<float>(rect)));

    std::size_t i = 0;
    for (int y = 0; y < need.dims[1]; ++y)
      for (int x = 0; x < need.dims[0]; ++x)
        EXPECT_EQ(rect[i++], value(x + need.offsets[0], y + need.offsets[1]));
  });
}

}  // namespace
