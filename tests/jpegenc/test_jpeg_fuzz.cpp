// Robustness tests for the JPEG decoder: truncations and mutations of valid
// streams must throw jpeg::Error or decode to a well-formed image — never
// crash or hang. Deterministic fuzz sweeps (fixed seeds).

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "jpegenc/jpeg.hpp"

namespace {

std::vector<std::byte> sample_stream() {
  img::RgbImage im(40, 24);
  for (std::uint32_t y = 0; y < 24; ++y)
    for (std::uint32_t x = 0; x < 40; ++x)
      im.at(x, y) = img::Rgb{static_cast<std::uint8_t>(x * 6),
                             static_cast<std::uint8_t>(y * 10),
                             static_cast<std::uint8_t>((x + y) * 4)};
  return jpeg::encode(im);
}

void decode_must_not_crash(std::span<const std::byte> data) {
  try {
    const img::RgbImage im = jpeg::decode(data);
    EXPECT_EQ(im.pixels().size(),
              static_cast<std::size_t>(im.width()) * im.height());
  } catch (const jpeg::Error&) {
    // Expected for most corruptions.
  }
}

TEST(JpegFuzz, TruncationsAreHandled) {
  const auto file = sample_stream();
  for (std::size_t len = 0; len < file.size(); len += 2) {
    std::vector<std::byte> cut(file.begin(),
                               file.begin() + static_cast<std::ptrdiff_t>(len));
    decode_must_not_crash(cut);
  }
}

TEST(JpegFuzz, SingleByteMutations) {
  const auto file = sample_stream();
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = file;
    mutated[rng() % mutated.size()] = static_cast<std::byte>(rng() & 0xff);
    decode_must_not_crash(mutated);
  }
}

TEST(JpegFuzz, MarkerRegionMutations) {
  // The segment headers (first ~650 bytes: DQT/SOF/DHT tables) are where
  // out-of-range indices would bite; hammer them specifically.
  const auto file = sample_stream();
  std::mt19937 rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = file;
    const std::size_t pos = rng() % std::min<std::size_t>(650, mutated.size());
    mutated[pos] = static_cast<std::byte>(rng() & 0xff);
    decode_must_not_crash(mutated);
  }
}

TEST(JpegFuzz, EntropyStreamBitFlipsStayInBounds) {
  // Bit flips inside the entropy-coded data must never produce
  // out-of-bounds block indices (the AC run checks catch overruns).
  const auto file = sample_stream();
  std::mt19937 rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = file;
    const std::size_t pos =
        650 + rng() % (mutated.size() - 652);  // keep SOI/EOI intact
    mutated[pos] ^= static_cast<std::byte>(1 << (rng() % 8));
    decode_must_not_crash(mutated);
  }
}

TEST(JpegFuzz, GarbageWithForgedSoi) {
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<std::byte> junk(8 + rng() % 300);
    for (auto& b : junk) b = static_cast<std::byte>(rng() & 0xff);
    junk[0] = std::byte{0xff};
    junk[1] = std::byte{0xd8};
    decode_must_not_crash(junk);
  }
}

}  // namespace
