// JPEG codec tests: container structure, encode/decode roundtrip fidelity
// (PSNR bounds), quality/size monotonicity, and the compression regime that
// Table IV of the paper depends on.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "image/colormap.hpp"
#include "jpegenc/jpeg.hpp"

namespace {

using img::Rgb;
using img::RgbImage;

/// Smooth field image resembling a colormapped LBM vorticity frame.
RgbImage smooth_field(std::uint32_t w, std::uint32_t h) {
  RgbImage im(w, h);
  const img::Colormap& cm = img::Colormap::blue_white_red();
  for (std::uint32_t y = 0; y < h; ++y)
    for (std::uint32_t x = 0; x < w; ++x) {
      const double v = std::sin(0.05 * x) * std::cos(0.07 * y);
      im.at(x, y) = cm.map(v, -1.0, 1.0);
    }
  return im;
}

double psnr(const RgbImage& a, const RgbImage& b) {
  double mse = 0;
  const std::size_t n = a.pixels().size();
  for (std::size_t i = 0; i < n; ++i) {
    const Rgb pa = a.pixels()[i], pb = b.pixels()[i];
    mse += (pa.r - pb.r) * double(pa.r - pb.r) +
           (pa.g - pb.g) * double(pa.g - pb.g) +
           (pa.b - pb.b) * double(pa.b - pb.b);
  }
  mse /= static_cast<double>(3 * n);
  if (mse == 0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

TEST(Jpeg, ContainerStructure) {
  const auto data = jpeg::encode(smooth_field(32, 32));
  ASSERT_GE(data.size(), 4u);
  // SOI at start, EOI at end.
  EXPECT_EQ(data[0], std::byte{0xff});
  EXPECT_EQ(data[1], std::byte{0xd8});
  EXPECT_EQ(data[data.size() - 2], std::byte{0xff});
  EXPECT_EQ(data.back(), std::byte{0xd9});
  // JFIF APP0 right after SOI.
  EXPECT_EQ(data[2], std::byte{0xff});
  EXPECT_EQ(data[3], std::byte{0xe0});
  EXPECT_EQ(static_cast<char>(data[6]), 'J');
  EXPECT_EQ(static_cast<char>(data[9]), 'F');
}

class JpegRoundtrip
    : public ::testing::TestWithParam<std::tuple<jpeg::Subsampling, int>> {};

TEST_P(JpegRoundtrip, DecodeRecoversImageWithinPsnrBound) {
  const auto [sub, quality] = GetParam();
  const RgbImage src = smooth_field(67, 45);  // non-multiple-of-16 dims
  jpeg::EncodeOptions opts;
  opts.quality = quality;
  opts.subsampling = sub;
  const auto data = jpeg::encode(src, opts);
  const RgbImage back = jpeg::decode(data);
  ASSERT_EQ(back.width(), src.width());
  ASSERT_EQ(back.height(), src.height());
  const double expect_psnr = quality >= 90 ? 36.0 : (quality >= 75 ? 32.0 : 26.0);
  EXPECT_GT(psnr(src, back), expect_psnr)
      << "quality " << quality << " produced too lossy a roundtrip";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, JpegRoundtrip,
    ::testing::Combine(::testing::Values(jpeg::Subsampling::s444,
                                         jpeg::Subsampling::s420),
                       ::testing::Values(50, 75, 92)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == jpeg::Subsampling::s444
                             ? "s444"
                             : "s420") +
             "_q" + std::to_string(std::get<1>(info.param));
    });

TEST(Jpeg, HigherQualityMeansLargerFiles) {
  const RgbImage src = smooth_field(128, 96);
  std::size_t prev = 0;
  for (int q : {10, 40, 75, 95}) {
    jpeg::EncodeOptions opts;
    opts.quality = q;
    const auto data = jpeg::encode(src, opts);
    EXPECT_GT(data.size(), prev) << "q=" << q;
    prev = data.size();
  }
}

TEST(Jpeg, SubsamplingShrinksOutput) {
  const RgbImage src = smooth_field(128, 128);
  jpeg::EncodeOptions o444;
  o444.subsampling = jpeg::Subsampling::s444;
  jpeg::EncodeOptions o420;
  o420.subsampling = jpeg::Subsampling::s420;
  EXPECT_LT(jpeg::encode(src, o420).size(), jpeg::encode(src, o444).size());
}

TEST(Jpeg, SmoothFieldsCompressToTableIVRegime) {
  // The paper's Table IV: colormapped frames compress raw float fields by
  // ~99.5 %. Check the equivalent comparison: JPEG bytes vs 4 bytes/cell.
  const RgbImage frame = smooth_field(648, 259);  // 1/5 of the smallest grid
  const auto data = jpeg::encode(frame);
  const double raw_bytes = 4.0 * frame.width() * frame.height();
  const double reduction = 1.0 - static_cast<double>(data.size()) / raw_bytes;
  EXPECT_GT(reduction, 0.95) << "JPEG size " << data.size() << " of raw "
                             << raw_bytes;
}

TEST(Jpeg, FlatImageIsTiny) {
  const RgbImage flat(256, 256, Rgb{120, 130, 140});
  const auto data = jpeg::encode(flat);
  EXPECT_LT(data.size(), 3000u);
  const RgbImage back = jpeg::decode(data);
  // A flat field should roundtrip almost exactly.
  EXPECT_GT(psnr(flat, back), 45.0);
}

TEST(Jpeg, OddSizesRoundtrip) {
  const std::pair<std::uint32_t, std::uint32_t> sizes[] = {
      {1, 1}, {7, 3}, {17, 17}, {16, 16}, {15, 33}};
  for (const auto& [w, h] : sizes) {
    const RgbImage src = smooth_field(w, h);
    const RgbImage back = jpeg::decode(jpeg::encode(src));
    ASSERT_EQ(back.width(), w);
    ASSERT_EQ(back.height(), h);
  }
}

TEST(Jpeg, RestartMarkersRoundtrip) {
  const RgbImage src = smooth_field(100, 60);
  for (int interval : {1, 3, 8}) {
    jpeg::EncodeOptions opts;
    opts.restart_interval = interval;
    const auto data = jpeg::encode(src, opts);
    // The stream must actually contain DRI and RST markers.
    bool has_dri = false, has_rst = false;
    for (std::size_t i = 0; i + 1 < data.size(); ++i) {
      if (data[i] == std::byte{0xff}) {
        const auto m = static_cast<std::uint8_t>(data[i + 1]);
        if (m == 0xdd) has_dri = true;
        if (m >= 0xd0 && m <= 0xd7) has_rst = true;
      }
    }
    EXPECT_TRUE(has_dri) << "interval " << interval;
    EXPECT_TRUE(has_rst) << "interval " << interval;
    const RgbImage back = jpeg::decode(data);
    EXPECT_GT(psnr(src, back), 30.0) << "interval " << interval;
  }
}

TEST(Jpeg, RestartAndPlainStreamsDecodeIdentically) {
  // Restart markers change framing, not content.
  const RgbImage src = smooth_field(64, 48);
  jpeg::EncodeOptions with;
  with.restart_interval = 2;
  const RgbImage a = jpeg::decode(jpeg::encode(src));
  const RgbImage b = jpeg::decode(jpeg::encode(src, with));
  int max_diff = 0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    max_diff = std::max({max_diff, std::abs(a.pixels()[i].r - b.pixels()[i].r),
                         std::abs(a.pixels()[i].g - b.pixels()[i].g),
                         std::abs(a.pixels()[i].b - b.pixels()[i].b)});
  }
  EXPECT_EQ(max_diff, 0);
}

TEST(Jpeg, NegativeRestartIntervalRejected) {
  jpeg::EncodeOptions opts;
  opts.restart_interval = -1;
  EXPECT_THROW(jpeg::encode(smooth_field(8, 8), opts), jpeg::Error);
}

TEST(Jpeg, FileIO) {
  const auto dir = std::filesystem::temp_directory_path() / "ddr_jpeg";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "f.jpg").string();
  jpeg::write_file(path, smooth_field(32, 32));
  EXPECT_GT(std::filesystem::file_size(path), 100u);
  std::filesystem::remove_all(dir);
}

TEST(Jpeg, RejectsBadInput) {
  EXPECT_THROW(jpeg::encode(RgbImage()), jpeg::Error);
  jpeg::EncodeOptions opts;
  opts.quality = 0;
  EXPECT_THROW(jpeg::encode(smooth_field(8, 8), opts), jpeg::Error);
  EXPECT_THROW(jpeg::decode({}), jpeg::Error);
  std::vector<std::byte> junk(32, std::byte{0x33});
  EXPECT_THROW(jpeg::decode(junk), jpeg::Error);
}

TEST(Jpeg, StuffedBytesSurviveRoundtrip) {
  // High-contrast noise maximizes the chance of 0xFF bytes in the entropy
  // stream, exercising the byte-stuffing path.
  RgbImage noisy(64, 64);
  std::uint32_t state = 12345;
  for (auto& p : noisy.pixels()) {
    state = state * 1664525u + 1013904223u;
    p.r = static_cast<std::uint8_t>(state >> 24);
    p.g = static_cast<std::uint8_t>(state >> 16);
    p.b = static_cast<std::uint8_t>(state >> 8);
  }
  jpeg::EncodeOptions opts;
  opts.quality = 95;
  opts.subsampling = jpeg::Subsampling::s444;  // keep chroma noise intact
  const auto data = jpeg::encode(noisy, opts);
  const RgbImage back = jpeg::decode(data);
  EXPECT_EQ(back.width(), 64u);
  EXPECT_GT(psnr(noisy, back), 20.0);  // noise is hard; just sanity
}

}  // namespace
