// Golden-trace conformance for one pencil-transpose timestep: the exact
// rank-0 event structure of the four back-to-back redistributions (slab ->
// pencil_y -> pencil_z -> pencil_y -> slab) a PencilTimestepper replays
// every step, pinned character for character under the alltoallw backend,
// plus determinism across repeated runs and a traced-bytes cross-check
// against the workload's closed-form accounting. Like the E1 goldens, this
// is a public-contract pin: the structure may only change with a DESIGN.md
// §9 schema bump.

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace {

constexpr int kRanks = 4;

/// Tiny deterministic grid: 8x8x8 floats over a 2x2 process grid, so every
/// stage splits each affected axis exactly in half (no remainders anywhere).
workloads::PencilParams tiny_params() {
  workloads::PencilParams p;
  p.nx = p.ny = p.nz = 8;
  p.nranks = kRanks;
  p.elem_size = sizeof(float);
  return p;
}

struct TracedStep {
  std::vector<std::string> structure;             // per rank
  std::vector<std::vector<trace::Event>> events;  // per rank
};

/// One PencilTimestepper step() with per-rank recorders attached; recorders
/// are cleared after construction so the captured stream is exactly the four
/// redistribute() calls of one timestep. Precondition agreement is off, as
/// in the E1 goldens, to keep the strings free of comm-wide allreduces.
TracedStep run_step(ddr::Backend backend) {
  TracedStep out;
  std::vector<trace::Recorder> recs;
  recs.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) recs.emplace_back(r);

  const workloads::PencilParams params = tiny_params();
  mpi::run(kRanks, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    ddr::SetupOptions opt;
    opt.backend = backend;
    opt.collective_error_agreement = false;
    workloads::PencilTimestepper ts(comm, params, opt);
    ts.trace_sink(&recs[static_cast<std::size_t>(r)]);

    std::vector<std::byte> slab(ts.slab_bytes(), std::byte{1});
    std::vector<std::byte> slab_out(ts.slab_bytes());
    ts.step(slab, slab_out);
  });

  for (const trace::Recorder& r : recs) {
    EXPECT_EQ(r.open_spans(), 0u);
    EXPECT_TRUE(trace::spans_balanced(r.events()));
    out.structure.push_back(trace::structure_string(r.events()));
    out.events.push_back(r.events());
  }
  return out;
}

}  // namespace

TEST(TracePencil, StepBytesMatchAnalyticAccounting) {
  // The traced network bytes of one timestep, summed over all ranks, must
  // equal the closed-form accounting of its four transposes — the workload
  // layer's independent derivation checked against what actually moved.
  using workloads::Stage;
  const workloads::PencilTranspose gen(tiny_params());
  const Stage chain[] = {Stage::slab, Stage::pencil_y, Stage::pencil_z,
                         Stage::pencil_y, Stage::slab};
  std::int64_t want_network = 0;
  for (int t = 0; t < 4; ++t)
    want_network += gen.accounting(chain[t], chain[t + 1]).network_bytes;

  const TracedStep run = run_step(ddr::Backend::alltoallw);
  std::int64_t sent = 0, received = 0;
  for (int r = 0; r < kRanks; ++r) {
    sent += trace::total_bytes(run.events[static_cast<std::size_t>(r)],
                               "ddr.msg.send");
    received += trace::total_bytes(run.events[static_cast<std::size_t>(r)],
                                   "ddr.msg.recv");
    // Four redistribute spans per step, one per transpose of the chain.
    EXPECT_EQ(trace::count_events(run.events[static_cast<std::size_t>(r)],
                                  "ddr.redistribute", trace::Phase::begin),
              4u)
        << "rank " << r;
  }
  EXPECT_EQ(sent, want_network);
  EXPECT_EQ(received, want_network);
}

TEST(TracePencil, StructureDeterministicAcrossRuns) {
  for (const ddr::Backend b :
       {ddr::Backend::alltoallw, ddr::Backend::point_to_point_fused}) {
    const TracedStep a = run_step(b);
    const TracedStep c = run_step(b);
    for (int r = 0; r < kRanks; ++r)
      EXPECT_EQ(a.structure[static_cast<std::size_t>(r)],
                c.structure[static_cast<std::size_t>(r)])
          << "backend " << static_cast<int>(b) << " rank " << r;
  }
}

TEST(TracePencil, AlltoallwRank0ExactStructure) {
  // The full golden string for rank 0's timestep under alltoallw, pinned
  // character for character. On the 8^3 grid over a 2x2 process grid, rank
  // 0 is process-grid coordinate (0,0): each slab<->pencil_y transpose
  // exchanges one 256-byte half-slab with rank 1 only (rank 0's slab z
  // rows land in grid row 0), and each pencil_y<->pencil_z transpose
  // exchanges one 256-byte quarter brick with rank 2 (same grid column,
  // other row). One round per transpose (one owned chunk per rank per
  // stage), the self lane as a zero-copy region copy inside the collective.
  const TracedStep run = run_step(ddr::Backend::alltoallw);
  const std::string hop_rank1 =
      "ddr.redistribute\n"
      "  ddr.round [round=0]\n"
      "    - ddr.msg.recv [round=0,peer=1,bytes=256]\n"
      "    - ddr.msg.send [round=0,peer=1,bytes=256]\n"
      "    mpi.alltoallw\n"
      "      mpi.copy_regions [bytes=256]\n"
      "      - mpi.staging.acquire [bytes=256]\n"
      "      - mpi.staging.release [bytes=256]\n";
  const std::string hop_rank2 =
      "ddr.redistribute\n"
      "  ddr.round [round=0]\n"
      "    - ddr.msg.recv [round=0,peer=2,bytes=256]\n"
      "    - ddr.msg.send [round=0,peer=2,bytes=256]\n"
      "    mpi.alltoallw\n"
      "      mpi.copy_regions [bytes=256]\n"
      "      - mpi.staging.acquire [bytes=256]\n"
      "      - mpi.staging.release [bytes=256]\n";
  // slab->pencil_y, pencil_y->pencil_z, pencil_z->pencil_y, pencil_y->slab.
  const std::string expected = hop_rank1 + hop_rank2 + hop_rank2 + hop_rank1;
  EXPECT_EQ(run.structure[0], expected);
}
