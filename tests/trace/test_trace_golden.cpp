// Golden-trace conformance for the paper's E1 layout: asserts the exact
// per-rank event structure (span nesting, per-round message instants, keys)
// that one redistribute() call records under each backend, and that the
// structure is deterministic across repeated runs. The trace schema is a
// public contract (DESIGN.md §9): these tests are what "stable" means.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"
#include "trace/trace.hpp"

namespace {

constexpr int kRanks = 4;

ddr::OwnedLayout e1_owned(int rank) {
  return {ddr::Chunk::d2(8, 1, 0, rank), ddr::Chunk::d2(8, 1, 0, rank + 4)};
}

ddr::Chunk e1_needed(int rank) {
  return ddr::Chunk::d2(4, 4, 4 * (rank % 2), 4 * (rank / 2));
}

struct TracedRun {
  std::vector<std::string> structure;            // per rank
  std::vector<std::vector<trace::Event>> events; // per rank
  int rounds = 0;
};

/// One setup() + redistribute() on E1 with per-rank recorders attached;
/// recorders are cleared after setup so the captured stream is exactly one
/// redistribute() call. Precondition agreement is off: its allreduce uses
/// comm-wide collectives whose event count depends only on rank count, but
/// the golden strings are simpler without it.
TracedRun run_e1(ddr::Backend backend) {
  TracedRun out;
  std::vector<trace::Recorder> recs;
  recs.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) recs.emplace_back(r);
  int rounds = 0;

  mpi::run(kRanks, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    ddr::Redistributor rd(comm, sizeof(float));
    rd.trace_sink(&recs[static_cast<std::size_t>(r)]);
    ddr::SetupOptions opt;
    opt.backend = backend;
    opt.collective_error_agreement = false;
    rd.setup(e1_owned(r), e1_needed(r), opt);
    recs[static_cast<std::size_t>(r)].clear();
    if (r == 0) rounds = rd.rounds();

    std::vector<float> src(rd.owned_bytes() / sizeof(float), 1.0f);
    std::vector<float> dst(rd.needed_bytes() / sizeof(float));
    rd.redistribute(std::as_bytes(std::span<const float>(src)),
                    std::as_writable_bytes(std::span<float>(dst)));
  });

  out.rounds = rounds;
  for (const trace::Recorder& r : recs) {
    EXPECT_EQ(r.open_spans(), 0u);
    EXPECT_TRUE(trace::spans_balanced(r.events()));
    out.structure.push_back(trace::structure_string(r.events()));
    out.events.push_back(r.events());
  }
  return out;
}

/// E1 ground truth: every rank sends 16 bytes to each of its 3 peers (12
/// messages, 192 bytes network-wide) and keeps 16 bytes local via the
/// zero-copy self lane.
void check_e1_bytes(const TracedRun& run) {
  for (int r = 0; r < kRanks; ++r) {
    const auto& ev = run.events[static_cast<std::size_t>(r)];
    const auto sent = trace::bytes_by_peer(ev, "ddr.msg.send");
    const auto recvd = trace::bytes_by_peer(ev, "ddr.msg.recv");
    ASSERT_EQ(sent.size(), 3u) << "rank " << r;
    ASSERT_EQ(recvd.size(), 3u) << "rank " << r;
    for (int q = 0; q < kRanks; ++q) {
      if (q == r) {
        EXPECT_FALSE(sent.contains(q)) << "self lane sent as message";
        EXPECT_FALSE(recvd.contains(q)) << "self lane received as message";
      } else {
        EXPECT_EQ(sent.at(q), 16) << "rank " << r << " -> " << q;
        EXPECT_EQ(recvd.at(q), 16) << "rank " << r << " <- " << q;
      }
    }
    // The self lane shows up as exactly one zero-copy region copy instead.
    EXPECT_EQ(trace::count_events(ev, "mpi.copy_regions", trace::Phase::begin),
              1u)
        << "rank " << r;
  }
}

// The JSON bench's strided3d case: 64^3 float domain, 4 ranks, 8 round-robin
// z-slabs of height 2 per rank; every rank needs one 32x32x64 brick. 8
// rounds, fusing to one 64 KiB lane per peer pair per direction.
ddr::OwnedLayout strided3d_owned(int rank) {
  constexpr int kSide = 64, kRanks = 4, kSlabs = 8;
  constexpr int slab_z = kSide / (kRanks * kSlabs);
  ddr::OwnedLayout own;
  for (int c = 0; c < kSlabs; ++c)
    own.push_back(ddr::Chunk::d3(kSide, kSide, slab_z, 0, 0,
                                 (rank + kRanks * c) * slab_z));
  return own;
}

ddr::Chunk strided3d_needed(int rank) {
  constexpr int kSide = 64;
  return ddr::Chunk::d3(kSide / 2, kSide / 2, kSide, (rank % 2) * kSide / 2,
                        (rank / 2) * kSide / 2, 0);
}

/// Like run_e1 but on the strided3d layout (the pipelined backend's bench
/// case, 8 rounds deep).
TracedRun run_strided3d(ddr::Backend backend) {
  TracedRun out;
  std::vector<trace::Recorder> recs;
  recs.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) recs.emplace_back(r);
  int rounds = 0;

  mpi::run(kRanks, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    ddr::Redistributor rd(comm, sizeof(float));
    rd.trace_sink(&recs[static_cast<std::size_t>(r)]);
    ddr::SetupOptions opt;
    opt.backend = backend;
    opt.collective_error_agreement = false;
    rd.setup(strided3d_owned(r), strided3d_needed(r), opt);
    recs[static_cast<std::size_t>(r)].clear();
    if (r == 0) rounds = rd.rounds();

    std::vector<float> src(rd.owned_bytes() / sizeof(float), 1.0f);
    std::vector<float> dst(rd.needed_bytes() / sizeof(float));
    rd.redistribute(std::as_bytes(std::span<const float>(src)),
                    std::as_writable_bytes(std::span<float>(dst)));
  });

  out.rounds = rounds;
  for (const trace::Recorder& r : recs) {
    EXPECT_EQ(r.open_spans(), 0u);
    EXPECT_TRUE(trace::spans_balanced(r.events()));
    out.structure.push_back(trace::structure_string(r.events()));
    out.events.push_back(r.events());
  }
  return out;
}

/// The recorded pipeline depth: value of the ddr.pipeline.depth instant
/// (number of receives posted up front), or -1 when absent.
std::int64_t recorded_depth(const std::vector<trace::Event>& ev) {
  for (const trace::Event& e : ev)
    if (std::string(e.name) == "ddr.pipeline.depth") return e.keys.value;
  return -1;
}

}  // namespace

TEST(TraceGolden, AlltoallwRoundSpansMatchSchedule) {
  const TracedRun run = run_e1(ddr::Backend::alltoallw);
  EXPECT_EQ(run.rounds, 2);
  for (int r = 0; r < kRanks; ++r) {
    const auto& ev = run.events[static_cast<std::size_t>(r)];
    EXPECT_EQ(trace::count_events(ev, "ddr.redistribute", trace::Phase::begin),
              1u);
    // One ddr.round span per alltoallw round (== max chunks per rank, §III-C).
    EXPECT_EQ(trace::count_events(ev, "ddr.round", trace::Phase::begin), 2u);
    EXPECT_EQ(trace::count_events(ev, "mpi.alltoallw", trace::Phase::begin),
              2u);
  }
  check_e1_bytes(run);
}

TEST(TraceGolden, P2pRoundSpansMatchSchedule) {
  const TracedRun run = run_e1(ddr::Backend::point_to_point);
  for (int r = 0; r < kRanks; ++r) {
    const auto& ev = run.events[static_cast<std::size_t>(r)];
    EXPECT_EQ(trace::count_events(ev, "ddr.round", trace::Phase::begin), 2u);
    EXPECT_EQ(trace::count_events(ev, "ddr.wait_all", trace::Phase::begin),
              1u);
    EXPECT_EQ(trace::count_events(ev, "mpi.alltoallw", trace::Phase::begin),
              0u);
  }
  check_e1_bytes(run);
}

TEST(TraceGolden, FusedEmitsOnePerPeerLane) {
  const TracedRun run = run_e1(ddr::Backend::point_to_point_fused);
  for (int r = 0; r < kRanks; ++r) {
    const auto& ev = run.events[static_cast<std::size_t>(r)];
    EXPECT_EQ(
        trace::count_events(ev, "ddr.exchange.fused", trace::Phase::begin),
        1u);
    EXPECT_EQ(trace::count_events(ev, "ddr.round", trace::Phase::begin), 0u);
    // Fused message instants carry no round (the lane spans every round).
    for (const trace::Event& e : ev)
      if (std::string(e.name) == "ddr.msg.send" ||
          std::string(e.name) == "ddr.msg.recv") {
        EXPECT_EQ(e.keys.round, -1);
      }
  }
  check_e1_bytes(run);
}

TEST(TraceGolden, StructureDeterministicAcrossRuns) {
  for (const ddr::Backend b :
       {ddr::Backend::alltoallw, ddr::Backend::point_to_point,
        ddr::Backend::point_to_point_fused}) {
    const TracedRun a = run_e1(b);
    const TracedRun c = run_e1(b);
    for (int r = 0; r < kRanks; ++r)
      EXPECT_EQ(a.structure[static_cast<std::size_t>(r)],
                c.structure[static_cast<std::size_t>(r)])
          << "backend " << static_cast<int>(b) << " rank " << r;
  }
}

TEST(TraceGolden, AlltoallwRank0ExactStructure) {
  // The full golden string for rank 0 under the alltoallw backend — pinned
  // character for character. Rank 0 owns rows y=0 (round 0) and y=4
  // (round 1) and needs the x:0-3,y:0-3 quadrant: round 0 receives rows
  // y=1..3 from ranks 1-3 and sends the x:4-7 half of row 0 to rank 1;
  // round 1 sends halves of row 4 to ranks 2 and 3. The self lane (x:0-3 of
  // row 0) moves as a zero-copy region copy inside the collective.
  const TracedRun run = run_e1(ddr::Backend::alltoallw);
  const std::string expected =
      "ddr.redistribute\n"
      "  ddr.round [round=0]\n"
      "    - ddr.msg.recv [round=0,peer=1,bytes=16]\n"
      "    - ddr.msg.send [round=0,peer=1,bytes=16]\n"
      "    - ddr.msg.recv [round=0,peer=2,bytes=16]\n"
      "    - ddr.msg.recv [round=0,peer=3,bytes=16]\n"
      "    mpi.alltoallw\n"
      "      mpi.copy_regions [bytes=16]\n"
      "      - mpi.staging.acquire [bytes=16]\n"
      "      - mpi.staging.release [bytes=16]\n"
      "      - mpi.staging.release [bytes=16]\n"
      "      - mpi.staging.release [bytes=16]\n"
      "  ddr.round [round=1]\n"
      "    - ddr.msg.send [round=1,peer=2,bytes=16]\n"
      "    - ddr.msg.send [round=1,peer=3,bytes=16]\n"
      "    mpi.alltoallw\n"
      "      - mpi.staging.acquire [bytes=16]\n"
      "      - mpi.staging.acquire [bytes=16]\n";
  EXPECT_EQ(run.structure[0], expected);
}

TEST(TraceGolden, PipelinedPostsWindowThenCompletesOutOfOrder) {
  const TracedRun run = run_e1(ddr::Backend::point_to_point_pipelined);
  EXPECT_EQ(run.rounds, 2);
  for (int r = 0; r < kRanks; ++r) {
    const auto& ev = run.events[static_cast<std::size_t>(r)];
    // One posting window, one pack span per peer lane, one completion
    // drain — and no ddr.round spans: the lanes stitch every round.
    EXPECT_EQ(trace::count_events(ev, "ddr.pipeline.post", trace::Phase::begin),
              1u);
    EXPECT_EQ(trace::count_events(ev, "ddr.pipeline.pack", trace::Phase::begin),
              3u);
    EXPECT_EQ(
        trace::count_events(ev, "ddr.pipeline.complete", trace::Phase::begin),
        1u);
    EXPECT_EQ(trace::count_events(ev, "ddr.round", trace::Phase::begin), 0u);
    // E1: 3 peers -> a window of 3 per-peer lane receives.
    EXPECT_EQ(recorded_depth(ev), 3);
  }
  // Byte accounting is completion-order independent.
  check_e1_bytes(run);
}

TEST(TraceGolden, PipelinedStrided3dConservesBytesOutOfOrder) {
  // Deliberately NOT an exact-structure pin: receive completion order under
  // the pipelined backend depends on thread scheduling. What must hold on
  // every run is the window shape and pairwise byte conservation.
  const TracedRun run = run_strided3d(ddr::Backend::point_to_point_pipelined);
  EXPECT_EQ(run.rounds, 8);
  std::vector<std::map<std::int64_t, std::int64_t>> sent(kRanks),
      recvd(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const auto& ev = run.events[static_cast<std::size_t>(r)];
    EXPECT_EQ(trace::count_events(ev, "ddr.pipeline.post", trace::Phase::begin),
              1u);
    EXPECT_EQ(trace::count_events(ev, "ddr.pipeline.pack", trace::Phase::begin),
              3u);
    // 3 peers, each peer's 8 rounds fused into one lane.
    EXPECT_EQ(recorded_depth(ev), 3);
    EXPECT_EQ(trace::count_events(ev, "ddr.msg.send", trace::Phase::instant),
              3u);
    EXPECT_EQ(trace::count_events(ev, "ddr.msg.recv", trace::Phase::instant),
              3u);
    sent[static_cast<std::size_t>(r)] = trace::bytes_by_peer(ev, "ddr.msg.send");
    recvd[static_cast<std::size_t>(r)] =
        trace::bytes_by_peer(ev, "ddr.msg.recv");
    // Each rank ships 3/4 of its 64x64x64/4 float slab set to peers.
    EXPECT_EQ(trace::total_bytes(ev, "ddr.msg.send"), 196608);
  }
  for (int r = 0; r < kRanks; ++r)
    for (int q = 0; q < kRanks; ++q) {
      if (q == r) continue;
      EXPECT_EQ(sent[static_cast<std::size_t>(r)].at(q),
                recvd[static_cast<std::size_t>(q)].at(r))
          << "bytes " << r << " -> " << q;
    }
}
