// Traced-bytes oracle: for random mutually-exclusive+complete owned
// partitions and random needed boxes (1D/2D/3D, all three backends), the
// per-peer byte totals recorded by the trace layer must equal an
// independently computed geometric overlap oracle — intersection volumes of
// owned chunks against needed chunks, with self lanes excluded.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace {

using ddr::Backend;
using ddr::Box;
using ddr::Chunk;
using ddr_test::box_to_chunk;
using ddr_test::fill_chunk;
using ddr_test::random_partition;
using ddr_test::random_subbox;

struct Scenario {
  int ndims;
  int nranks;
  Backend backend;
  unsigned seed;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const char* b = info.param.backend == Backend::alltoallw       ? "w"
                  : info.param.backend == Backend::point_to_point ? "p2p"
                                                                  : "fused";
  return "d" + std::to_string(info.param.ndims) + "_p" +
         std::to_string(info.param.nranks) + "_" + b;
}

Box make_domain(int ndims, std::mt19937& rng) {
  Box d;
  d.ndims = ndims;
  std::uniform_int_distribution<std::int64_t> ext(4, 24);
  for (int k = 0; k < ndims; ++k) {
    d.lo[static_cast<std::size_t>(k)] = 0;
    d.hi[static_cast<std::size_t>(k)] = ext(rng);
  }
  return d;
}

/// Independent oracle: bytes rank `from` must send rank `to` — the summed
/// intersection volume of every owned chunk of `from` against every needed
/// chunk of `to` (each needed chunk receives its own copy, matching the
/// mapping's per-needed-chunk enumeration).
std::int64_t overlap_bytes(const std::vector<ddr::OwnedLayout>& owned,
                           const std::vector<ddr::NeededLayout>& needed,
                           int from, int to, std::size_t elem_size) {
  std::int64_t vol = 0;
  for (const Chunk& o : owned[static_cast<std::size_t>(from)])
    for (const Chunk& n : needed[static_cast<std::size_t>(to)])
      vol += ddr::intersect(o.box(), n.box()).volume();
  return vol * static_cast<std::int64_t>(elem_size);
}

class TracedBytes : public ::testing::TestWithParam<Scenario> {};

TEST_P(TracedBytes, MatchOverlapOracle) {
  const Scenario sc = GetParam();
  std::mt19937 rng(sc.seed);

  for (int trial = 0; trial < 4; ++trial) {
    const Box domain = make_domain(sc.ndims, rng);
    const auto boxes =
        random_partition(domain, sc.nranks * 2 + sc.nranks / 2, rng);
    std::vector<ddr::OwnedLayout> owned(static_cast<std::size_t>(sc.nranks));
    for (std::size_t i = 0; i < boxes.size(); ++i)
      owned[i % static_cast<std::size_t>(sc.nranks)].push_back(
          box_to_chunk(boxes[i]));
    std::vector<ddr::NeededLayout> needed(static_cast<std::size_t>(sc.nranks));
    for (int r = 0; r < sc.nranks; ++r)
      needed[static_cast<std::size_t>(r)] = {
          box_to_chunk(random_subbox(domain, rng))};

    std::vector<trace::Recorder> recs;
    recs.reserve(static_cast<std::size_t>(sc.nranks));
    for (int r = 0; r < sc.nranks; ++r) recs.emplace_back(r);

    mpi::run(sc.nranks, [&](mpi::Comm& comm) {
      const auto rank = static_cast<std::size_t>(comm.rank());
      ddr::Redistributor rd(comm, sizeof(float));
      rd.trace_sink(&recs[rank]);
      ddr::SetupOptions opts;
      opts.backend = sc.backend;
      rd.setup(owned[rank], needed[rank], opts);
      recs[rank].clear();

      std::vector<float> own_data;
      for (const auto& c : owned[rank]) {
        const auto v = fill_chunk(c);
        own_data.insert(own_data.end(), v.begin(), v.end());
      }
      std::vector<float> need_data(rd.needed_bytes() / sizeof(float), -1.0f);
      rd.redistribute(std::as_bytes(std::span<const float>(own_data)),
                      std::as_writable_bytes(std::span<float>(need_data)));
    });

    for (int r = 0; r < sc.nranks; ++r) {
      const auto& ev = recs[static_cast<std::size_t>(r)].events();
      ASSERT_TRUE(trace::spans_balanced(ev));
      const auto sent = trace::bytes_by_peer(ev, "ddr.msg.send");
      const auto recvd = trace::bytes_by_peer(ev, "ddr.msg.recv");
      for (int q = 0; q < sc.nranks; ++q) {
        const std::int64_t exp_send =
            q == r ? 0 : overlap_bytes(owned, needed, r, q, sizeof(float));
        const std::int64_t exp_recv =
            q == r ? 0 : overlap_bytes(owned, needed, q, r, sizeof(float));
        const auto it_s = sent.find(q);
        const auto it_r = recvd.find(q);
        EXPECT_EQ(it_s != sent.end() ? it_s->second : 0, exp_send)
            << "trial " << trial << " send " << r << " -> " << q;
        EXPECT_EQ(it_r != recvd.end() ? it_r->second : 0, exp_recv)
            << "trial " << trial << " recv " << r << " <- " << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TracedBytes,
    ::testing::Values(Scenario{1, 4, Backend::alltoallw, 501},
                      Scenario{1, 5, Backend::point_to_point, 502},
                      Scenario{1, 3, Backend::point_to_point_fused, 503},
                      Scenario{2, 4, Backend::alltoallw, 601},
                      Scenario{2, 6, Backend::point_to_point, 602},
                      Scenario{2, 5, Backend::point_to_point_fused, 603},
                      Scenario{3, 4, Backend::alltoallw, 701},
                      Scenario{3, 5, Backend::point_to_point, 702},
                      Scenario{3, 6, Backend::point_to_point_fused, 703}),
    scenario_name);

}  // namespace
