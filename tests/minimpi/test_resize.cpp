// Elastic resize: Comm::resize grow/shrink, dormant-rank activation
// (RunOptions::max_ranks + joiner_main), the bounded shrink/resize
// agreement, and the ULFM-style Comm::agree commit primitive.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;

/// Kills one world rank at its first MPI entry point.
class KillRank final : public mpi::FaultModel {
 public:
  explicit KillRank(int target) : target_(target) {}
  bool should_kill(int world_rank, double) override {
    return world_rank == target_;
  }

 private:
  int target_;
};

TEST(Resize, GrowActivatesJoinersAndKeepsSurvivorOrder) {
  mpi::RunOptions opts;
  opts.max_ranks = 5;
  std::atomic<int> joiners{0};
  std::atomic<int> sum{0};
  opts.joiner_main = [&](Comm& comm) {
    joiners.fetch_add(1);
    // Joiners are full members: collectives span old ranks and joiners.
    int v = comm.rank(), total = 0;
    comm.allreduce(&v, &total, 1, Datatype::of<int>(), mpi::Op::sum<int>());
    sum.fetch_add(total);
  };
  mpi::run(
      2,
      [&](Comm& comm) {
        Comm grown = comm.resize(5);
        ASSERT_TRUE(grown.valid());
        EXPECT_EQ(grown.size(), 5);
        // Survivors keep their relative order and precede the joiners.
        EXPECT_EQ(grown.rank(), comm.rank());
        int v = grown.rank(), total = 0;
        grown.allreduce(&v, &total, 1, Datatype::of<int>(), mpi::Op::sum<int>());
        sum.fetch_add(total);
      },
      opts);
  EXPECT_EQ(joiners.load(), 3);
  EXPECT_EQ(sum.load(), 5 * (0 + 1 + 2 + 3 + 4));
}

TEST(Resize, ShrinkRetiresTailRanks) {
  std::atomic<int> retired{0};
  std::atomic<int> kept{0};
  mpi::run(4, [&](Comm& comm) {
    Comm small = comm.resize(2);
    if (comm.rank() >= 2) {
      EXPECT_FALSE(small.valid());
      retired.fetch_add(1);
      return;  // retired ranks stop using the old communicator
    }
    ASSERT_TRUE(small.valid());
    EXPECT_EQ(small.size(), 2);
    EXPECT_EQ(small.rank(), comm.rank());
    small.barrier();
    kept.fetch_add(1);
  });
  EXPECT_EQ(retired.load(), 2);
  EXPECT_EQ(kept.load(), 2);
}

TEST(Resize, SameSizeIsAFreshCommunicator) {
  mpi::run(3, [&](Comm& comm) {
    Comm same = comm.resize(3);
    ASSERT_TRUE(same.valid());
    EXPECT_EQ(same.size(), 3);
    EXPECT_EQ(same.rank(), comm.rank());
    EXPECT_NE(same.trace_id(), comm.trace_id());
    same.barrier();
  });
}

TEST(Resize, GrowPastCapacityThrowsOnEveryMember) {
  mpi::RunOptions opts;
  opts.max_ranks = 3;  // one dormant slot
  opts.joiner_main = [](Comm&) {};  // the successful grow's joiner just parks
  std::atomic<int> threw{0};
  mpi::run(
      2,
      [&](Comm& comm) {
        EXPECT_EQ(comm.spawnable_ranks(), 1);
        try {
          (void)comm.resize(4);  // needs 2 fresh ranks, only 1 available
        } catch (const mpi::Error& e) {
          EXPECT_EQ(e.error_class(), mpi::ErrorClass::invalid_argument);
          threw.fetch_add(1);
        }
        // The failed grow burned nothing: the slot is still claimable.
        EXPECT_EQ(comm.spawnable_ranks(), 1);
        Comm grown = comm.resize(3);
        ASSERT_TRUE(grown.valid());
        EXPECT_EQ(grown.size(), 3);
      },
      opts);
  EXPECT_EQ(threw.load(), 2);
}

TEST(Resize, MismatchedNewSizeThrowsOnEveryMember) {
  std::atomic<int> threw{0};
  mpi::run(2, [&](Comm& comm) {
    try {
      (void)comm.resize(comm.rank() == 0 ? 1 : 2);
    } catch (const mpi::Error& e) {
      EXPECT_EQ(e.error_class(), mpi::ErrorClass::invalid_argument);
      threw.fetch_add(1);
    }
  });
  EXPECT_EQ(threw.load(), 2);
}

TEST(Resize, JoinersCanExchangeWithOldRanks) {
  mpi::RunOptions opts;
  opts.max_ranks = 4;
  opts.joiner_main = [&](Comm& comm) {
    // Joiner (rank 2 or 3): receive from the old rank with the same parity.
    int v = -1;
    comm.recv(&v, 1, Datatype::of<int>(), comm.rank() - 2, 9);
    EXPECT_EQ(v, 100 + comm.rank() - 2);
    comm.barrier();  // mirrors the old ranks' barrier on the grown comm
  };
  mpi::run(
      2,
      [&](Comm& comm) {
        Comm grown = comm.resize(4);
        const int v = 100 + grown.rank();
        grown.send(&v, 1, Datatype::of<int>(), grown.rank() + 2, 9);
        grown.barrier();
      },
      opts);
}

TEST(Resize, ShrinkConvergesWhileDeathRaces) {
  // Rank 2 dies at its first entry point; ranks 0 and 1 head straight into
  // shrink() without synchronizing on the death first. The bounded agreement
  // must converge on {0, 1} regardless of which survivor observes the death
  // first (this is the retry path that used to be a hard error).
  KillRank fault(2);
  mpi::RunOptions opts;
  opts.fault = &fault;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> shrunk{0};
  mpi::run(
      3,
      [&](Comm& comm) {
        if (comm.rank() == 2) {
          comm.checkpoint();  // killed here
          FAIL() << "rank 2 must be killed at the checkpoint";
        }
        // Stagger the survivors to exercise both arrival orders.
        if (comm.rank() == 1)
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        Comm survivors = comm.shrink();
        EXPECT_EQ(survivors.size(), 2);
        EXPECT_EQ(survivors.rank(), comm.rank());
        survivors.barrier();
        shrunk.fetch_add(1);
      },
      opts);
  EXPECT_EQ(shrunk.load(), 2);
}

TEST(Agree, UnanimousAndBitwiseAnd) {
  mpi::run(3, [&](Comm& comm) {
    EXPECT_EQ(comm.agree(1u), 1u);
    // Bitwise AND over contributions.
    const std::uint32_t mine = comm.rank() == 1 ? 0b110u : 0b011u;
    EXPECT_EQ(comm.agree(mine), 0b010u);
    // Any zero vote vetoes.
    EXPECT_EQ(comm.agree(comm.rank() == 2 ? 0u : 1u), 0u);
  });
}

TEST(Agree, DeadMemberContributesZero) {
  // Rank 1 dies before voting: every survivor must agree on 0 even though
  // they voted 1 — the primitive proves "every member reached the vote".
  KillRank fault(1);
  mpi::RunOptions opts;
  opts.fault = &fault;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> zeros{0};
  mpi::run(
      3,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          comm.checkpoint();  // killed here, before the vote
          FAIL() << "rank 1 must be killed at the checkpoint";
        }
        if (comm.agree(1u) == 0u) zeros.fetch_add(1);
      },
      opts);
  EXPECT_EQ(zeros.load(), 2);
}

TEST(Agree, RepeatedCallsStayAligned) {
  mpi::run(2, [&](Comm& comm) {
    for (std::uint32_t i = 0; i < 8; ++i)
      EXPECT_EQ(comm.agree(i), i);
  });
}

}  // namespace
