// Point-to-point messaging tests: blocking and nonblocking send/recv, tag and
// source matching, wildcards, ordering guarantees, truncation errors, and
// probe.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::any_source;
using mpi::any_tag;
using mpi::Comm;
using mpi::Datatype;

TEST(P2P, SendRecvFloats) {
  mpi::run(2, [](Comm& comm) {
    const Datatype f = Datatype::of<float>();
    if (comm.rank() == 0) {
      const std::vector<float> data{1.5f, -2.0f, 3.25f};
      comm.send(data.data(), data.size(), f, 1, 7);
    } else {
      std::vector<float> got(3, 0.0f);
      const mpi::Status s = comm.recv(got.data(), got.size(), f, 0, 7);
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(s.tag, 7);
      EXPECT_EQ(s.bytes, 3 * sizeof(float));
      EXPECT_EQ(got, (std::vector<float>{1.5f, -2.0f, 3.25f}));
    }
  });
}

TEST(P2P, TagMatchingSelectsCorrectMessage) {
  mpi::run(2, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 0) {
      const int a = 111, b = 222;
      comm.send(&a, 1, i, 1, /*tag=*/1);
      comm.send(&b, 1, i, 1, /*tag=*/2);
    } else {
      int got = 0;
      comm.recv(&got, 1, i, 0, 2);  // request the second tag first
      EXPECT_EQ(got, 222);
      comm.recv(&got, 1, i, 0, 1);
      EXPECT_EQ(got, 111);
    }
  });
}

TEST(P2P, NonOvertakingSameTag) {
  mpi::run(2, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 0) {
      for (int k = 0; k < 50; ++k) comm.send(&k, 1, i, 1, 3);
    } else {
      for (int k = 0; k < 50; ++k) {
        int got = -1;
        comm.recv(&got, 1, i, 0, 3);
        EXPECT_EQ(got, k) << "messages with equal (src, tag) must not overtake";
      }
    }
  });
}

TEST(P2P, AnySourceAnyTag) {
  mpi::run(3, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() != 0) {
      const int v = comm.rank() * 10;
      comm.send(&v, 1, i, 0, comm.rank());
    } else {
      int sum = 0;
      for (int k = 0; k < 2; ++k) {
        int got = 0;
        const mpi::Status s = comm.recv(&got, 1, i, any_source, any_tag);
        EXPECT_EQ(got, s.source * 10);
        EXPECT_EQ(s.tag, s.source);
        sum += got;
      }
      EXPECT_EQ(sum, 30);
    }
  });
}

TEST(P2P, TruncationThrows) {
  EXPECT_THROW(
      mpi::run(2,
               [](Comm& comm) {
                 const Datatype i = Datatype::of<int>();
                 if (comm.rank() == 0) {
                   const std::vector<int> data(8, 1);
                   comm.send(data.data(), data.size(), i, 1, 0);
                 } else {
                   std::vector<int> small(2);
                   comm.recv(small.data(), small.size(), i, 0, 0);
                 }
               }),
      mpi::Error);
}

TEST(P2P, ReceiveFewerElementsThanCapacityIsFine) {
  mpi::run(2, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 0) {
      const int v = 9;
      comm.send(&v, 1, i, 1, 0);
    } else {
      std::vector<int> buf(10, -1);
      const mpi::Status s = comm.recv(buf.data(), buf.size(), i, 0, 0);
      EXPECT_EQ(s.bytes, sizeof(int));
      EXPECT_EQ(s.count(sizeof(int)), 1u);
      EXPECT_EQ(buf[0], 9);
      EXPECT_EQ(buf[1], -1);
    }
  });
}

TEST(P2P, SendRecvWithSubarrayTypesTransposesLayout) {
  // Sender transmits a column of a 4x4 matrix; receiver stores it as a row.
  mpi::run(2, [](Comm& comm) {
    const Datatype b = Datatype::bytes(1);
    const int sizes[] = {4, 4};
    if (comm.rank() == 0) {
      std::vector<std::byte> m(16);
      for (int i = 0; i < 16; ++i) m[static_cast<std::size_t>(i)] = std::byte(i);
      const int sub[] = {4, 1}, st[] = {0, 2};  // column 2
      const Datatype col = Datatype::subarray(sizes, sub, st, b);
      comm.send(m.data(), 1, col, 1, 0);
    } else {
      std::vector<std::byte> m(16, std::byte{0});
      const int sub[] = {1, 4}, st[] = {1, 0};  // row 1
      const Datatype row = Datatype::subarray(sizes, sub, st, b);
      comm.recv(m.data(), 1, row, 0, 0);
      EXPECT_EQ(m[4], std::byte(2));
      EXPECT_EQ(m[5], std::byte(6));
      EXPECT_EQ(m[6], std::byte(10));
      EXPECT_EQ(m[7], std::byte(14));
    }
  });
}

TEST(P2P, IsendIrecvWaitAll) {
  mpi::run(4, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    // Halo-style exchange: everyone sends its rank to both neighbors.
    const int left = (comm.rank() - 1 + p) % p;
    const int right = (comm.rank() + 1) % p;
    int from_left = -1, from_right = -1;
    std::vector<mpi::Request> reqs;
    reqs.push_back(comm.irecv(&from_left, 1, i, left, 0));
    reqs.push_back(comm.irecv(&from_right, 1, i, right, 1));
    const int me = comm.rank();
    reqs.push_back(comm.isend(&me, 1, i, right, 0));
    reqs.push_back(comm.isend(&me, 1, i, left, 1));
    mpi::wait_all(reqs);
    EXPECT_EQ(from_left, left);
    EXPECT_EQ(from_right, right);
  });
}

TEST(P2P, RequestTestPollsToCompletion) {
  mpi::run(2, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 1) {
      int got = 0;
      mpi::Request r = comm.irecv(&got, 1, i, 0, 0);
      std::optional<mpi::Status> s;
      while (!(s = r.test())) {
      }
      EXPECT_EQ(got, 42);
      EXPECT_EQ(s->source, 0);
    } else {
      const int v = 42;
      comm.send(&v, 1, i, 1, 0);
    }
  });
}

TEST(P2P, WaitAnyReturnsFirstCompletion) {
  mpi::run(3, [](mpi::Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 0) {
      int a = -1, b = -1;
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.irecv(&a, 1, i, 1, 0));
      reqs.push_back(comm.irecv(&b, 1, i, 2, 0));
      // Only rank 2 sends initially.
      const auto [idx, st] = mpi::wait_any(reqs);
      EXPECT_EQ(idx, 1u);
      EXPECT_EQ(st.source, 2);
      EXPECT_EQ(b, 222);
      EXPECT_FALSE(reqs[1].valid());
      // Unblock the remaining request.
      const int go = 1;
      comm.send(&go, 1, i, 1, 9);
      const auto [idx2, st2] = mpi::wait_any(reqs);
      EXPECT_EQ(idx2, 0u);
      EXPECT_EQ(a, 111);
    } else if (comm.rank() == 2) {
      const int v = 222;
      comm.send(&v, 1, i, 0, 0);
    } else {
      int go = 0;
      comm.recv(&go, 1, i, 0, 9);  // wait until rank 0 saw rank 2's message
      const int v = 111;
      comm.send(&v, 1, i, 0, 0);
    }
  });
}

TEST(P2P, WaitAnyWithNoValidRequestsThrows) {
  mpi::run(1, [](mpi::Comm&) {
    std::vector<mpi::Request> reqs(3);  // all invalid
    EXPECT_THROW(mpi::wait_any(reqs), mpi::Error);
  });
}

TEST(P2P, ProbeReportsSizeWithoutConsuming) {
  mpi::run(2, [](Comm& comm) {
    const Datatype d = Datatype::of<double>();
    if (comm.rank() == 0) {
      const std::vector<double> data(5, 3.14);
      comm.send(data.data(), data.size(), d, 1, 9);
    } else {
      const mpi::Status p = comm.probe(0, 9);
      EXPECT_EQ(p.bytes, 5 * sizeof(double));
      std::vector<double> buf(p.count(sizeof(double)));
      comm.recv(buf.data(), buf.size(), d, p.source, p.tag);
      EXPECT_DOUBLE_EQ(buf[4], 3.14);
    }
  });
}

TEST(P2P, IprobeReturnsNulloptWhenEmpty) {
  mpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.iprobe(1, 0).has_value());
    }
    comm.barrier();
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 1) {
      const int v = 1;
      comm.send(&v, 1, i, 0, 0);
    }
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_TRUE(comm.iprobe(1, 0).has_value());
      int got;
      comm.recv(&got, 1, i, 1, 0);
    }
  });
}

TEST(P2P, SendrecvExchangesWithoutDeadlock) {
  mpi::run(2, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int mine = comm.rank() + 100;
    int theirs = -1;
    const int peer = 1 - comm.rank();
    comm.sendrecv(&mine, 1, i, peer, 0, &theirs, 1, i, peer, 0);
    EXPECT_EQ(theirs, peer + 100);
  });
}

TEST(P2P, InvalidRankThrows) {
  EXPECT_THROW(mpi::run(2,
                        [](Comm& comm) {
                          const int v = 0;
                          comm.send(&v, 1, Datatype::of<int>(), 5, 0);
                        }),
               mpi::Error);
}

TEST(P2P, NegativeTagThrows) {
  EXPECT_THROW(mpi::run(2,
                        [](Comm& comm) {
                          const int v = 0;
                          comm.send(&v, 1, Datatype::of<int>(),
                                    1 - comm.rank(), -3);
                        }),
               mpi::Error);
}

TEST(P2P, ZeroByteMessage) {
  mpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(nullptr, 0, Datatype::of<int>(), 1, 0);
    } else {
      const mpi::Status s = comm.recv(nullptr, 0, Datatype::of<int>(), 0, 0);
      EXPECT_EQ(s.bytes, 0u);
    }
  });
}

TEST(P2P, ManyRanksRing) {
  // Pass a token around a large ring to stress thread scheduling.
  constexpr int kRanks = 64;
  mpi::run(kRanks, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    if (comm.rank() == 0) {
      int token = 1;
      comm.send(&token, 1, i, 1, 0);
      comm.recv(&token, 1, i, p - 1, 0);
      EXPECT_EQ(token, p);
    } else {
      int token = 0;
      comm.recv(&token, 1, i, comm.rank() - 1, 0);
      ++token;
      comm.send(&token, 1, i, (comm.rank() + 1) % p, 0);
    }
  });
}

}  // namespace
