// Unit and property tests for minimpi derived datatypes: size/extent
// accounting, segment flattening, and pack/unpack roundtrips for every
// constructor.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "minimpi/datatype.hpp"

using mpi::Datatype;
using mpi::Order;

namespace {

std::vector<std::byte> iota_bytes(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i & 0xff);
  return v;
}

// Collects (offset, len) segments of one element.
std::vector<std::pair<std::size_t, std::size_t>> segments(const Datatype& t,
                                                          std::size_t count = 1) {
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  t.for_each_segment(count, [&](std::size_t off, std::size_t len) {
    segs.emplace_back(off, len);
  });
  return segs;
}

TEST(Datatype, BytesBasics) {
  const Datatype t = Datatype::bytes(12);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.extent(), 12u);
  EXPECT_TRUE(t.contiguous());
}

TEST(Datatype, NamedOf) {
  EXPECT_EQ(Datatype::of<float>().size(), sizeof(float));
  EXPECT_EQ(Datatype::of<double>().extent(), sizeof(double));
  EXPECT_TRUE(Datatype::of<int>().contiguous());
}

TEST(Datatype, DefaultIsZeroSized) {
  const Datatype t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.extent(), 0u);
}

TEST(Datatype, ContiguousOfFloat) {
  const Datatype t = Datatype::contiguous(5, Datatype::of<float>());
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.extent(), 20u);
  EXPECT_TRUE(t.contiguous());
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{0}, std::size_t{20}));
}

TEST(Datatype, VectorSizeExtentAndSegments) {
  // 3 blocks of 2 floats, stride 4 floats: |XX..|XX..|XX|
  const Datatype t = Datatype::vector(3, 2, 4, Datatype::of<float>());
  EXPECT_EQ(t.size(), 3 * 2 * sizeof(float));
  EXPECT_EQ(t.extent(), (2 * 4 + 2) * sizeof(float));
  EXPECT_FALSE(t.contiguous());
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{0}, std::size_t{8}));
  EXPECT_EQ(segs[1], std::make_pair(std::size_t{16}, std::size_t{8}));
  EXPECT_EQ(segs[2], std::make_pair(std::size_t{32}, std::size_t{8}));
}

TEST(Datatype, VectorWithUnitStrideIsContiguous) {
  const Datatype t = Datatype::vector(4, 1, 1, Datatype::of<int>());
  EXPECT_TRUE(t.contiguous());
  EXPECT_EQ(t.size(), t.extent());
}

TEST(Datatype, HvectorStrideBytes) {
  const Datatype t = Datatype::hvector(2, 3, 100, Datatype::bytes(1));
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(), 103u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[1].first, 100u);
}

TEST(Datatype, NegativeHvectorStrideRejected) {
  EXPECT_THROW(Datatype::hvector(3, 1, -8, Datatype::of<double>()),
               mpi::Error);
}

TEST(Datatype, Subarray2DOrderC) {
  // 4x6 array of bytes, 2x3 sub-box at (1,2); Order::c => last dim fastest.
  const int sizes[] = {4, 6}, subsizes[] = {2, 3}, starts[] = {1, 2};
  const Datatype t =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(), 24u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 2u);  // two rows of 3
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{1 * 6 + 2}, std::size_t{3}));
  EXPECT_EQ(segs[1], std::make_pair(std::size_t{2 * 6 + 2}, std::size_t{3}));
}

TEST(Datatype, Subarray2DOrderFortranMatchesTransposedC) {
  // Fortran order: FIRST index fastest. A [x,y] description in Fortran order
  // equals a [y,x] description in C order.
  const int f_sizes[] = {6, 4}, f_sub[] = {3, 2}, f_starts[] = {2, 1};
  const Datatype ft = Datatype::subarray(f_sizes, f_sub, f_starts,
                                         Datatype::bytes(1), Order::fortran);
  const int c_sizes[] = {4, 6}, c_sub[] = {2, 3}, c_starts[] = {1, 2};
  const Datatype ct =
      Datatype::subarray(c_sizes, c_sub, c_starts, Datatype::bytes(1));
  EXPECT_EQ(segments(ft), segments(ct));
}

TEST(Datatype, Subarray1D) {
  const int sizes[] = {10}, subsizes[] = {4}, starts[] = {3};
  const Datatype t =
      Datatype::subarray(sizes, subsizes, starts, Datatype::of<float>());
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.extent(), 40u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{12}, std::size_t{16}));
}

TEST(Datatype, Subarray3DSegmentCount) {
  const int sizes[] = {4, 5, 6}, subsizes[] = {2, 3, 4}, starts[] = {1, 1, 1};
  const Datatype t =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(2));
  EXPECT_EQ(t.size(), 2u * 3u * 4u * 2u);
  // One segment per (i, j) pair of the two outer dimensions.
  EXPECT_EQ(segments(t).size(), 2u * 3u);
}

TEST(Datatype, SubarrayEmptyBoxEmitsNothing) {
  const int sizes[] = {4, 4}, subsizes[] = {0, 2}, starts[] = {0, 0};
  const Datatype t =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(segments(t).empty());
}

TEST(Datatype, SubarrayValidation) {
  const int sizes[] = {4, 4};
  {
    const int sub[] = {5, 1}, st[] = {0, 0};
    EXPECT_THROW(Datatype::subarray(sizes, sub, st, Datatype::bytes(1)),
                 mpi::Error);
  }
  {
    const int sub[] = {2, 2}, st[] = {3, 0};
    EXPECT_THROW(Datatype::subarray(sizes, sub, st, Datatype::bytes(1)),
                 mpi::Error);
  }
  {
    const int sub[] = {2, 2}, st[] = {-1, 0};
    EXPECT_THROW(Datatype::subarray(sizes, sub, st, Datatype::bytes(1)),
                 mpi::Error);
  }
}

TEST(Datatype, StructLayout) {
  // block 0: 2 floats at 0; block 1: 1 double at 16.
  const int blocklens[] = {2, 1};
  const std::ptrdiff_t displs[] = {0, 16};
  const Datatype types[] = {Datatype::of<float>(), Datatype::of<double>()};
  const Datatype t = Datatype::strukt(blocklens, displs, types);
  EXPECT_EQ(t.size(), 2 * sizeof(float) + sizeof(double));
  EXPECT_EQ(t.extent(), 24u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{0}, std::size_t{8}));
  EXPECT_EQ(segs[1], std::make_pair(std::size_t{16}, std::size_t{8}));
}

TEST(Datatype, ResizedChangesExtentOnly) {
  const Datatype t = Datatype::resized(Datatype::of<float>(), 16);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.extent(), 16u);
  const auto segs = segments(t, 2);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[1].first, 16u);  // second element starts one extent later
}

TEST(Datatype, PackUnpackVectorRoundtrip) {
  const Datatype t = Datatype::vector(3, 2, 4, Datatype::of<float>());
  const auto src = iota_bytes(t.extent());
  std::vector<std::byte> packed(t.size());
  t.pack(src.data(), 1, packed.data());
  std::vector<std::byte> dst(t.extent(), std::byte{0xee});
  t.unpack(packed.data(), 1, dst.data());
  // Every byte covered by the type must roundtrip; holes stay untouched.
  t.for_each_segment(1, [&](std::size_t off, std::size_t len) {
    EXPECT_EQ(std::memcmp(dst.data() + off, src.data() + off, len), 0);
  });
}

TEST(Datatype, PackedOrderIsSegmentOrder) {
  const int sizes[] = {3, 4}, subsizes[] = {2, 2}, starts[] = {1, 1};
  const Datatype t =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  const auto src = iota_bytes(t.extent());
  std::vector<std::byte> packed(t.size());
  t.pack(src.data(), 1, packed.data());
  // Row 1 cols 1-2 then row 2 cols 1-2 of a 3x4 byte array.
  EXPECT_EQ(packed[0], src[1 * 4 + 1]);
  EXPECT_EQ(packed[1], src[1 * 4 + 2]);
  EXPECT_EQ(packed[2], src[2 * 4 + 1]);
  EXPECT_EQ(packed[3], src[2 * 4 + 2]);
}

TEST(Datatype, MultiElementPackUsesExtentStride) {
  const Datatype t = Datatype::vector(2, 1, 2, Datatype::bytes(1));
  // One element: bytes {0, 2}; extent 3. Two elements: {0,2, 3,5}.
  const auto src = iota_bytes(2 * t.extent());
  std::vector<std::byte> packed(2 * t.size());
  t.pack(src.data(), 2, packed.data());
  EXPECT_EQ(packed[0], src[0]);
  EXPECT_EQ(packed[1], src[2]);
  EXPECT_EQ(packed[2], src[3]);
  EXPECT_EQ(packed[3], src[5]);
}

// --- property sweep: random subarrays roundtrip ----------------------------

struct SubarrayCase {
  int ndims;
  unsigned seed;
};

class SubarrayRoundtrip : public ::testing::TestWithParam<SubarrayCase> {};

TEST_P(SubarrayRoundtrip, PackUnpackIdentity) {
  const auto [ndims, seed] = GetParam();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dim_dist(1, 9);
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<int> sizes(static_cast<std::size_t>(ndims));
    std::vector<int> sub(static_cast<std::size_t>(ndims));
    std::vector<int> starts(static_cast<std::size_t>(ndims));
    for (int d = 0; d < ndims; ++d) {
      const auto k = static_cast<std::size_t>(d);
      sizes[k] = dim_dist(rng);
      sub[k] = std::uniform_int_distribution<int>(0, sizes[k])(rng);
      starts[k] = std::uniform_int_distribution<int>(0, sizes[k] - sub[k])(rng);
    }
    const std::size_t elem = 1 + static_cast<std::size_t>(iter % 4);
    const Datatype t =
        Datatype::subarray(sizes, sub, starts, Datatype::bytes(elem));

    const auto src = iota_bytes(t.extent());
    std::vector<std::byte> packed(t.size(), std::byte{0});
    t.pack(src.data(), 1, packed.data());
    std::vector<std::byte> dst(t.extent(), std::byte{0xAA});
    t.unpack(packed.data(), 1, dst.data());

    std::size_t covered = 0;
    t.for_each_segment(1, [&](std::size_t off, std::size_t len) {
      EXPECT_EQ(std::memcmp(dst.data() + off, src.data() + off, len), 0)
          << "ndims=" << ndims << " iter=" << iter;
      covered += len;
    });
    EXPECT_EQ(covered, t.size());
    // Bytes outside the sub-box must be untouched.
    std::vector<bool> in_box(t.extent(), false);
    t.for_each_segment(1, [&](std::size_t off, std::size_t len) {
      for (std::size_t i = off; i < off + len; ++i) in_box[i] = true;
    });
    for (std::size_t i = 0; i < dst.size(); ++i) {
      if (!in_box[i]) {
        EXPECT_EQ(dst[i], std::byte{0xAA}) << "hole at " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, SubarrayRoundtrip,
    ::testing::Values(SubarrayCase{1, 11}, SubarrayCase{2, 22},
                      SubarrayCase{3, 33}, SubarrayCase{4, 44}),
    [](const auto& info) {
      return "ndims" + std::to_string(info.param.ndims);
    });

TEST(Datatype, IndexedLayout) {
  // Blocks of 2 and 3 floats at element displacements 1 and 5.
  const int blocklens[] = {2, 3};
  const int displs[] = {1, 5};
  const Datatype t = Datatype::indexed(blocklens, displs, Datatype::of<float>());
  EXPECT_EQ(t.size(), 5 * sizeof(float));
  EXPECT_EQ(t.extent(), 8 * sizeof(float));
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{4}, std::size_t{8}));
  EXPECT_EQ(segs[1], std::make_pair(std::size_t{20}, std::size_t{12}));
}

TEST(Datatype, IndexedBlockUniformLengths) {
  const int displs[] = {0, 4, 9};
  const Datatype t =
      Datatype::indexed_block(2, displs, Datatype::bytes(1));
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(), 11u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[2], std::make_pair(std::size_t{9}, std::size_t{2}));
}

TEST(Datatype, IndexedPackUnpackRoundtrip) {
  const int blocklens[] = {1, 2, 1};
  const int displs[] = {6, 2, 0};  // out-of-order displacements are legal
  const Datatype t = Datatype::indexed(blocklens, displs, Datatype::bytes(2));
  const auto src = iota_bytes(t.extent());
  std::vector<std::byte> packed(t.size());
  t.pack(src.data(), 1, packed.data());
  // Packed order follows block order: displ 6, then 2-3, then 0.
  EXPECT_EQ(packed[0], src[12]);
  EXPECT_EQ(packed[2], src[4]);
  EXPECT_EQ(packed[6], src[0]);
  std::vector<std::byte> dst(t.extent(), std::byte{0xCC});
  t.unpack(packed.data(), 1, dst.data());
  t.for_each_segment(1, [&](std::size_t off, std::size_t len) {
    EXPECT_EQ(std::memcmp(dst.data() + off, src.data() + off, len), 0);
  });
}

TEST(Datatype, IndexedValidation) {
  const int blocklens[] = {1, 2};
  const int displs[] = {0};
  EXPECT_THROW(Datatype::indexed(blocklens, displs, Datatype::bytes(1)),
               mpi::Error);
}

// --- nested constructor combinations ----------------------------------------

TEST(Datatype, ContiguousOfSubarray) {
  // Three consecutive 2x2 corners of 4x4 byte tiles.
  const int sizes[] = {4, 4}, sub[] = {2, 2}, st[] = {0, 0};
  const Datatype tile = Datatype::subarray(sizes, sub, st, Datatype::bytes(1));
  const Datatype t = Datatype::contiguous(3, tile);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.extent(), 48u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 6u);  // 2 rows per tile x 3 tiles
  EXPECT_EQ(segs[2].first, 16u);  // second tile starts one tile-extent later
}

TEST(Datatype, VectorOfSubarray) {
  // Two 1x2 boxes from 2x4 tiles, tiles strided 2 apart.
  const int sizes[] = {2, 4}, sub[] = {1, 2}, st[] = {1, 1};
  const Datatype tile = Datatype::subarray(sizes, sub, st, Datatype::bytes(1));
  const Datatype t = Datatype::vector(2, 1, 2, tile);
  EXPECT_EQ(t.size(), 4u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{5}, std::size_t{2}));
  EXPECT_EQ(segs[1], std::make_pair(std::size_t{21}, std::size_t{2}));
}

TEST(Datatype, SubarrayOfVectorInner) {
  // Inner element is itself non-contiguous: every other byte of 4.
  const Datatype inner = Datatype::vector(2, 1, 2, Datatype::bytes(1));
  EXPECT_EQ(inner.size(), 2u);
  EXPECT_EQ(inner.extent(), 3u);
  const int sizes[] = {3}, sub[] = {2}, st[] = {1};
  const Datatype t = Datatype::subarray(sizes, sub, st, inner);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.extent(), 9u);
  const auto segs = segments(t);
  // Two inner elements covering bytes {3, 5} and {6, 8}: the second run of
  // the first element touches the first run of the second, so the compiled
  // plan coalesces them into one 2-byte run.
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{3}, std::size_t{1}));
  EXPECT_EQ(segs[1], std::make_pair(std::size_t{5}, std::size_t{2}));
  EXPECT_EQ(segs[2], std::make_pair(std::size_t{8}, std::size_t{1}));
}

TEST(Datatype, StructOfStructs) {
  const int bl1[] = {1};
  const std::ptrdiff_t d1[] = {2};
  const Datatype innermost[] = {Datatype::bytes(3)};
  const Datatype mid = Datatype::strukt(bl1, d1, innermost);  // 3 B at +2
  const int bl2[] = {1, 1};
  const std::ptrdiff_t d2[] = {0, 10};
  const Datatype two[] = {mid, mid};
  const Datatype t = Datatype::strukt(bl2, d2, two);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(), 15u);
  const auto segs = segments(t);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], std::make_pair(std::size_t{2}, std::size_t{3}));
  EXPECT_EQ(segs[1], std::make_pair(std::size_t{12}, std::size_t{3}));
}

TEST(Datatype, NestedRoundtripProperty) {
  // Pack/unpack identity for a deliberately gnarly nesting.
  std::mt19937 rng(4096);
  const Datatype inner = Datatype::vector(3, 2, 3, Datatype::bytes(2));
  const int sizes[] = {4, 3}, sub[] = {2, 2}, st[] = {1, 0};
  const Datatype mid = Datatype::subarray(sizes, sub, st, inner);
  const Datatype t = Datatype::contiguous(2, mid);

  std::vector<std::byte> src(t.extent());
  for (auto& b : src) b = static_cast<std::byte>(rng() & 0xff);
  std::vector<std::byte> packed(t.size());
  t.pack(src.data(), 1, packed.data());
  std::vector<std::byte> dst(t.extent(), std::byte{0x11});
  t.unpack(packed.data(), 1, dst.data());
  std::size_t covered = 0;
  t.for_each_segment(1, [&](std::size_t off, std::size_t len) {
    EXPECT_EQ(std::memcmp(dst.data() + off, src.data() + off, len), 0);
    covered += len;
  });
  EXPECT_EQ(covered, t.size());
}

TEST(Datatype, DescribeMentionsShape) {
  const int sizes[] = {4, 6}, subsizes[] = {2, 3}, starts[] = {1, 2};
  const Datatype t =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  const std::string d = t.describe();
  EXPECT_NE(d.find("subarray"), std::string::npos);
  EXPECT_NE(d.find("[4,6]"), std::string::npos);
}

}  // namespace
