// Stress tests: many ranks, mixed concurrent traffic, repeated splits, and
// communicator-per-group collectives racing against world-level p2p — the
// access patterns the in-transit use case generates, cranked up.

#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;
using mpi::Op;

TEST(Stress, MixedGroupCollectivesAndWorldTraffic) {
  static constexpr int kRanks = 48;
  mpi::run(kRanks, [](Comm& world) {
    const Datatype i = Datatype::of<int>();
    // Three-way split; groups interleave their own collectives with world
    // p2p messages to the same-index rank of the next group.
    const int color = world.rank() % 3;
    Comm group = world.split(color, world.rank());

    for (int round = 0; round < 5; ++round) {
      // Group collective.
      int sum = 0;
      const int mine = world.rank() + round;
      group.allreduce(&mine, &sum, 1, i, Op::sum<int>());
      int expect = 0;
      for (int r = color; r < kRanks; r += 3) expect += r + round;
      ASSERT_EQ(sum, expect);

      // World p2p to the "same seat" in the next group.
      const int peer = (world.rank() + 1) % kRanks;
      const int from = (world.rank() - 1 + kRanks) % kRanks;
      int got = -1;
      world.sendrecv(&mine, 1, i, peer, round, &got, 1, i, from, round);
      ASSERT_EQ(got, from + round);
    }
  });
}

TEST(Stress, RepeatedSplitsDoNotLeakOrCollide) {
  mpi::run(24, [](Comm& world) {
    for (int gen = 0; gen < 8; ++gen) {
      const int color = (world.rank() / (1 << (gen % 3))) % 4;
      Comm sub = world.split(color, world.rank());
      ASSERT_TRUE(sub.valid());
      int n = 0;
      const int one = 1;
      sub.allreduce(&one, &n, 1, Datatype::of<int>(), Op::sum<int>());
      ASSERT_EQ(n, sub.size());
      // Nested split of the subgroup.
      Comm leaf = sub.split(sub.rank() % 2, 0);
      leaf.barrier();
    }
  });
}

TEST(Stress, ManySmallMessagesWithWildcards) {
  // A work-queue pattern: rank 0 consumes from everyone with any_source
  // while producers burst unevenly.
  static constexpr int kRanks = 16;
  static constexpr int kPerRank = 40;
  mpi::run(kRanks, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 0) {
      std::vector<int> counts(kRanks, 0);
      for (int k = 0; k < (kRanks - 1) * kPerRank; ++k) {
        int payload = -1;
        const mpi::Status s =
            comm.recv(&payload, 1, i, mpi::any_source, mpi::any_tag);
        ASSERT_EQ(payload, s.source * 1000 + s.tag);
        ++counts[static_cast<std::size_t>(s.source)];
      }
      for (int r = 1; r < kRanks; ++r)
        ASSERT_EQ(counts[static_cast<std::size_t>(r)], kPerRank);
    } else {
      for (int k = 0; k < kPerRank; ++k) {
        const int payload = comm.rank() * 1000 + k;
        comm.send(&payload, 1, i, 0, k);
      }
    }
  });
}

TEST(Stress, LargePayloadsThroughCollectives) {
  // 1 MiB per rank through allgatherv — exercises payload buffering.
  static constexpr int kRanks = 6;
  static constexpr int kInts = 256 * 1024;
  mpi::run(kRanks, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    std::vector<int> mine(kInts, comm.rank());
    std::vector<int> counts(kRanks, kInts), displs(kRanks);
    for (int r = 0; r < kRanks; ++r) displs[static_cast<std::size_t>(r)] = r * kInts;
    std::vector<int> all(static_cast<std::size_t>(kRanks) * kInts, -1);
    comm.allgatherv(mine.data(), mine.size(), i, all.data(), counts, displs, i);
    for (int r = 0; r < kRanks; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r) * kInts], r);
      ASSERT_EQ(all[static_cast<std::size_t>(r + 1) * kInts - 1], r);
    }
  });
}

}  // namespace
