// Runtime-level tests: launching, exception propagation without hangs, and
// virtual-clock semantics with and without a network model.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<int> rank_mask{0};
  mpi::run(8, [&](Comm& comm) {
    count.fetch_add(1);
    rank_mask.fetch_or(1 << comm.rank());
    EXPECT_EQ(comm.size(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  EXPECT_EQ(rank_mask.load(), 0xFF);
}

TEST(Runtime, SingleRankWorld) {
  mpi::run(1, [](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    int v = 5;
    comm.bcast(&v, 1, Datatype::of<int>(), 0);
    EXPECT_EQ(v, 5);
  });
}

TEST(Runtime, ZeroRanksRejected) {
  EXPECT_THROW(mpi::run(0, [](Comm&) {}), mpi::Error);
}

TEST(Runtime, ExceptionInOneRankPropagatesWithoutHanging) {
  // Rank 1 throws while rank 0 is blocked in recv; the abort machinery must
  // wake rank 0 and run() must rethrow the original exception.
  EXPECT_THROW(
      mpi::run(2,
               [](Comm& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("boom");
                 int v;
                 comm.recv(&v, 1, Datatype::of<int>(), 1, 0);
               }),
      std::runtime_error);
}

TEST(Runtime, ExceptionDuringCollectiveAborts) {
  EXPECT_THROW(
      mpi::run(4,
               [](Comm& comm) {
                 if (comm.rank() == 2) throw std::logic_error("bad rank");
                 comm.barrier();
                 comm.barrier();
               }),
      std::logic_error);
}

TEST(Runtime, VtimesReturnedPerRank) {
  const mpi::RunResult res = mpi::run(3, [](Comm& comm) {
    comm.clock().advance(0.5 * (comm.rank() + 1));
  });
  ASSERT_EQ(res.vtimes.size(), 3u);
  EXPECT_DOUBLE_EQ(res.vtimes[0], 0.5);
  EXPECT_DOUBLE_EQ(res.vtimes[2], 1.5);
  EXPECT_DOUBLE_EQ(res.makespan(), 1.5);
}

TEST(Runtime, ClockCausalityWithoutModel) {
  // A receiver's clock may never lag a message's departure time, even with
  // no network model installed.
  const mpi::RunResult res = mpi::run(2, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    if (comm.rank() == 0) {
      comm.clock().advance(2.0);  // heavy local work before sending
      const int v = 1;
      comm.send(&v, 1, i, 1, 0);
    } else {
      int v;
      comm.recv(&v, 1, i, 0, 0);
      EXPECT_GE(comm.clock().now(), 2.0);
    }
  });
  EXPECT_GE(res.vtimes[1], 2.0);
}

TEST(Runtime, BarrierSynchronizesClocks) {
  const mpi::RunResult res = mpi::run(5, [](Comm& comm) {
    comm.clock().advance(comm.rank() == 3 ? 10.0 : 0.1);
    comm.barrier();
    EXPECT_GE(comm.clock().now(), 10.0);
  });
  for (double t : res.vtimes) EXPECT_GE(t, 10.0);
}

/// Fixed-cost model for testing: every message costs exactly
/// latency + bytes * sec_per_byte, no overheads.
class FixedModel final : public mpi::NetworkModel {
 public:
  FixedModel(double latency, double sec_per_byte)
      : latency_(latency), spb_(sec_per_byte) {}
  double send_overhead(std::size_t) const override { return 0.0; }
  double transfer_time(std::size_t bytes, int, int) const override {
    return latency_ + static_cast<double>(bytes) * spb_;
  }
  double recv_overhead(std::size_t) const override { return 0.0; }

 private:
  double latency_, spb_;
};

TEST(Runtime, NetworkModelChargesTransferTime) {
  const FixedModel model(/*latency=*/1.0, /*sec_per_byte=*/0.001);
  mpi::RunOptions opts;
  opts.network = &model;
  const mpi::RunResult res = mpi::run(
      2,
      [](Comm& comm) {
        const Datatype b = Datatype::bytes(1);
        if (comm.rank() == 0) {
          std::vector<std::byte> payload(1000);
          comm.send(payload.data(), payload.size(), b, 1, 0);
          // Sender pays no transfer time.
          EXPECT_DOUBLE_EQ(comm.clock().now(), 0.0);
        } else {
          std::vector<std::byte> payload(1000);
          comm.recv(payload.data(), payload.size(), b, 0, 0);
          // depart(0) + 1.0 latency + 1000 * 0.001.
          EXPECT_DOUBLE_EQ(comm.clock().now(), 2.0);
        }
      },
      opts);
  EXPECT_DOUBLE_EQ(res.makespan(), 2.0);
}

TEST(Runtime, NetworkModelAccumulatesOverRounds) {
  const FixedModel model(0.5, 0.0);
  mpi::RunOptions opts;
  opts.network = &model;
  const mpi::RunResult res = mpi::run(
      2,
      [](Comm& comm) {
        const Datatype i = Datatype::of<int>();
        const int peer = 1 - comm.rank();
        // Ping-pong: each round trip adds 2 * latency to both clocks.
        for (int round = 0; round < 4; ++round) {
          if (comm.rank() == 0) {
            const int v = round;
            comm.send(&v, 1, i, peer, 0);
            int got;
            comm.recv(&got, 1, i, peer, 0);
          } else {
            int got;
            comm.recv(&got, 1, i, peer, 0);
            comm.send(&got, 1, i, peer, 0);
          }
        }
      },
      opts);
  // Rank 0 waits for 4 full round trips: 8 half-trips * 0.5 s = 4 s.
  EXPECT_DOUBLE_EQ(res.vtimes[0], 4.0);
  EXPECT_DOUBLE_EQ(res.vtimes[1], 3.5);  // never waits for the last reply
}

TEST(Runtime, ModeledRunsAreDeterministic) {
  // With purely model-driven costs (no measured CPU time), the virtual
  // clocks must be bit-identical across repeated runs regardless of how the
  // OS schedules the rank threads.
  const FixedModel model(1e-4, 1e-9);
  mpi::RunOptions opts;
  opts.network = &model;
  auto workload = [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    std::vector<int> all(static_cast<std::size_t>(comm.size()));
    const int mine = comm.rank() * 3;
    comm.allgather(&mine, 1, i, all.data(), 1, i);
    int total = 0;
    comm.allreduce(&mine, &total, 1, i, mpi::Op::sum<int>());
    comm.barrier();
    if (comm.rank() > 0) {
      comm.send(&total, 1, i, 0, 5);
    } else {
      for (int r = 1; r < comm.size(); ++r) {
        int got;
        comm.recv(&got, 1, i, r, 5);
      }
    }
  };
  const mpi::RunResult a = mpi::run(9, workload, opts);
  const mpi::RunResult b = mpi::run(9, workload, opts);
  ASSERT_EQ(a.vtimes.size(), b.vtimes.size());
  for (std::size_t i = 0; i < a.vtimes.size(); ++i)
    EXPECT_EQ(a.vtimes[i], b.vtimes[i]) << "rank " << i;
  EXPECT_GT(a.makespan(), 0.0);
}

TEST(Runtime, RepeatedRunsAreIsolated) {
  // Worlds must not leak state: a message left unreceived in one run can
  // never surface in a later run.
  mpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 1;
      comm.send(&v, 1, Datatype::of<int>(), 1, 0);  // never received
    }
  });
  mpi::run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      EXPECT_FALSE(comm.iprobe(0, 0).has_value());
    }
  });
}

TEST(Runtime, LargeRankCountSmoke) {
  // The paper's largest configuration uses 216 ranks; make sure the runtime
  // can launch that many rank threads and complete a collective.
  mpi::run(216, [](Comm& comm) {
    int sum = 0;
    const int one = 1;
    comm.allreduce(&one, &sum, 1, Datatype::of<int>(), mpi::Op::sum<int>());
    EXPECT_EQ(sum, 216);
  });
}

}  // namespace
