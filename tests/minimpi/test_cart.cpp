// Tests for Cartesian topologies: dims_create factorization, coordinate
// mapping, periodic and bounded shifts, and a ring exchange driven entirely
// through the topology.

#include <gtest/gtest.h>

#include "minimpi/cart.hpp"
#include "minimpi/minimpi.hpp"

namespace {

using mpi::CartComm;

TEST(DimsCreate, BalancedFactorizations) {
  EXPECT_EQ(CartComm::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(CartComm::dims_create(16, 2), (std::vector<int>{4, 4}));
  EXPECT_EQ(CartComm::dims_create(27, 3), (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(CartComm::dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(CartComm::dims_create(1, 3), (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(CartComm::dims_create(60, 3), (std::vector<int>{5, 4, 3}));
}

TEST(DimsCreate, ProductAlwaysMatches) {
  for (int n = 1; n <= 64; ++n)
    for (int d = 1; d <= 3; ++d) {
      const auto dims = CartComm::dims_create(n, d);
      int prod = 1;
      for (int v : dims) prod *= v;
      EXPECT_EQ(prod, n) << "n=" << n << " d=" << d;
    }
}

TEST(Cart, CoordsRoundtrip) {
  mpi::run(12, [](mpi::Comm& comm) {
    const int dims[] = {4, 3};
    const bool periods[] = {false, false};
    const CartComm cart(comm, dims, periods);
    const auto c = cart.coords(comm.rank());
    EXPECT_EQ(cart.rank_of(c), comm.rank());
    EXPECT_EQ(c[0], comm.rank() % 4);
    EXPECT_EQ(c[1], comm.rank() / 4);
  });
}

TEST(Cart, BoundedShiftCutsOffAtEdges) {
  mpi::run(4, [](mpi::Comm& comm) {
    const int dims[] = {4};
    const bool periods[] = {false};
    const CartComm cart(comm, dims, periods);
    const auto [src, dst] = cart.shift(0, 1);
    EXPECT_EQ(src, comm.rank() > 0 ? comm.rank() - 1 : -1);
    EXPECT_EQ(dst, comm.rank() < 3 ? comm.rank() + 1 : -1);
  });
}

TEST(Cart, PeriodicShiftWraps) {
  mpi::run(4, [](mpi::Comm& comm) {
    const int dims[] = {4};
    const bool periods[] = {true};
    const CartComm cart(comm, dims, periods);
    const auto [src, dst] = cart.shift(0, 1);
    EXPECT_EQ(src, (comm.rank() + 3) % 4);
    EXPECT_EQ(dst, (comm.rank() + 1) % 4);
    // Displacements beyond one hop also wrap.
    const auto [src2, dst2] = cart.shift(0, 5);  // == shift by 1
    EXPECT_EQ(src2, src);
    EXPECT_EQ(dst2, dst);
  });
}

TEST(Cart, RingExchangeViaTopology) {
  mpi::run(6, [](mpi::Comm& comm) {
    const int dims[] = {3, 2};
    const bool periods[] = {true, false};
    const CartComm cart(comm, dims, periods);
    const mpi::Datatype i = mpi::Datatype::of<int>();
    // Shift along the periodic x axis.
    const auto [src, dst] = cart.shift(0, 1);
    ASSERT_GE(src, 0);
    ASSERT_GE(dst, 0);
    const int mine = comm.rank() * 11;
    int got = -1;
    comm.sendrecv(&mine, 1, i, dst, 0, &got, 1, i, src, 0);
    EXPECT_EQ(got, src * 11);

    // Shift along the bounded y axis: edge ranks see -1.
    const auto c = cart.coords(comm.rank());
    const auto [ysrc, ydst] = cart.shift(1, 1);
    EXPECT_EQ(ysrc >= 0, c[1] > 0);
    EXPECT_EQ(ydst >= 0, c[1] < 1);
  });
}

TEST(Cart, RejectsMismatchedGrid) {
  EXPECT_THROW(mpi::run(4,
                        [](mpi::Comm& comm) {
                          const int dims[] = {3};
                          const bool periods[] = {false};
                          CartComm cart(comm, dims, periods);
                        }),
               mpi::Error);
}

}  // namespace
