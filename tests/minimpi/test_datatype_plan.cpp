// Property tests of the compiled segment plan: for randomly generated
// datatype trees (all constructors, including zero-size edge cases), the
// plan-driven pack/unpack must be byte-identical to the legacy recursive
// walker, and copy_regions must equal pack-then-unpack.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <random>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::Datatype;

/// RAII toggle of the global plan switch (tests must not leak a disabled
/// plan path into other tests of this binary).
class PlanToggle {
 public:
  explicit PlanToggle(bool enabled) { Datatype::set_plan_enabled(enabled); }
  ~PlanToggle() { Datatype::set_plan_enabled(true); }
};

/// Builds a random datatype tree of the given depth. Sizes are kept small so
/// a full random suite stays fast, but every constructor is reachable,
/// including zero-count/zero-length degenerate forms.
Datatype random_type(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind_dist(0, depth <= 0 ? 0 : 6);
  std::uniform_int_distribution<int> small(1, 3);
  std::uniform_int_distribution<int> tiny(0, 2);
  switch (kind_dist(rng)) {
    case 0:
      return Datatype::bytes(static_cast<std::size_t>(
          std::uniform_int_distribution<int>(0, 5)(rng)));
    case 1:
      return Datatype::contiguous(static_cast<std::size_t>(tiny(rng)),
                                  random_type(rng, depth - 1));
    case 2: {
      const Datatype inner = random_type(rng, depth - 1);
      const int count = small(rng);
      const int blocklen = small(rng);
      // Non-overlapping: stride (in inner elements) >= blocklen.
      const int stride = blocklen + tiny(rng);
      return Datatype::vector(static_cast<std::size_t>(count),
                              static_cast<std::size_t>(blocklen), stride,
                              inner);
    }
    case 3: {
      const Datatype inner = random_type(rng, depth - 1);
      const int count = small(rng);
      const int blocklen = small(rng);
      const auto stride_bytes = static_cast<std::ptrdiff_t>(
          static_cast<std::size_t>(blocklen) * inner.extent() +
          static_cast<std::size_t>(tiny(rng)));
      return Datatype::hvector(static_cast<std::size_t>(count),
                               static_cast<std::size_t>(blocklen),
                               stride_bytes, inner);
    }
    case 4: {
      const Datatype inner = random_type(rng, depth - 1);
      const int ndims = std::uniform_int_distribution<int>(1, 3)(rng);
      std::vector<int> sizes, subsizes, starts;
      for (int d = 0; d < ndims; ++d) {
        const int n = std::uniform_int_distribution<int>(1, 4)(rng);
        const int sub = std::uniform_int_distribution<int>(0, n)(rng);
        const int start =
            std::uniform_int_distribution<int>(0, n - sub)(rng);
        sizes.push_back(n);
        subsizes.push_back(sub);
        starts.push_back(start);
      }
      const mpi::Order order =
          tiny(rng) == 0 ? mpi::Order::fortran : mpi::Order::c;
      return Datatype::subarray(sizes, subsizes, starts, inner, order);
    }
    case 5: {
      const int nblocks = small(rng);
      std::vector<int> blocklens;
      std::vector<std::ptrdiff_t> displs;
      std::vector<Datatype> types;
      std::ptrdiff_t cursor = 0;
      for (int b = 0; b < nblocks; ++b) {
        const Datatype t = random_type(rng, depth - 1);
        const int len = tiny(rng);
        cursor += tiny(rng);  // random gap
        blocklens.push_back(len);
        displs.push_back(cursor);
        types.push_back(t);
        cursor += static_cast<std::ptrdiff_t>(
            static_cast<std::size_t>(len) * t.extent());
      }
      return Datatype::strukt(blocklens, displs, types);
    }
    default: {
      const Datatype inner = random_type(rng, depth - 1);
      const int nblocks = small(rng);
      std::vector<int> blocklens, displs;
      int cursor = 0;
      for (int b = 0; b < nblocks; ++b) {
        const int len = tiny(rng);
        cursor += tiny(rng);
        blocklens.push_back(len);
        displs.push_back(cursor);
        cursor += len;
      }
      return Datatype::indexed(blocklens, displs, inner);
    }
  }
}

std::vector<std::byte> random_bytes(std::mt19937& rng, std::size_t n) {
  std::vector<std::byte> v(n);
  std::uniform_int_distribution<int> d(0, 255);
  for (auto& b : v) b = static_cast<std::byte>(d(rng));
  return v;
}

TEST(DatatypePlan, PackMatchesLegacyWalkerOnRandomTrees) {
  std::mt19937 rng(20170406);  // the paper's conference date
  for (int trial = 0; trial < 300; ++trial) {
    const Datatype t = random_type(rng, 3);
    const std::size_t count =
        static_cast<std::size_t>(std::uniform_int_distribution<int>(0, 3)(rng));
    const std::vector<std::byte> src =
        random_bytes(rng, count * t.extent() + 16);

    std::vector<std::byte> via_plan(count * t.size() + 1,
                                    std::byte{0xAA});
    std::vector<std::byte> via_legacy(count * t.size() + 1,
                                      std::byte{0xAA});
    {
      PlanToggle on(true);
      t.pack(src.data(), count, via_plan.data());
    }
    {
      PlanToggle off(false);
      t.pack(src.data(), count, via_legacy.data());
    }
    ASSERT_EQ(via_plan, via_legacy)
        << "trial " << trial << ": " << t.describe();
  }
}

TEST(DatatypePlan, UnpackMatchesLegacyWalkerOnRandomTrees) {
  std::mt19937 rng(424242);
  for (int trial = 0; trial < 300; ++trial) {
    const Datatype t = random_type(rng, 3);
    const std::size_t count =
        static_cast<std::size_t>(std::uniform_int_distribution<int>(0, 3)(rng));
    const std::vector<std::byte> packed = random_bytes(rng, count * t.size());

    // Holes must keep their previous contents identically on both paths.
    std::vector<std::byte> via_plan(count * t.extent() + 16, std::byte{0x5C});
    std::vector<std::byte> via_legacy = via_plan;
    {
      PlanToggle on(true);
      t.unpack(packed.data(), count, via_plan.data());
    }
    {
      PlanToggle off(false);
      t.unpack(packed.data(), count, via_legacy.data());
    }
    ASSERT_EQ(via_plan, via_legacy)
        << "trial " << trial << ": " << t.describe();
  }
}

TEST(DatatypePlan, ForEachSegmentCoversSizeBytesInPackedOrder) {
  // Whatever the plan does to segment granularity, the runs of one element
  // must be disjoint, in increasing offset order when coalesced, and sum to
  // size() bytes — for both paths.
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Datatype t = random_type(rng, 3);
    for (const bool enabled : {true, false}) {
      PlanToggle toggle(enabled);
      std::size_t total = 0;
      t.for_each_segment(1, [&](std::size_t, std::size_t len) {
        total += len;
      });
      ASSERT_EQ(total, t.size())
          << "plan=" << enabled << " trial " << trial << ": " << t.describe();
    }
  }
}

TEST(DatatypePlan, PlanSegmentCountCoalescesAdjacentRuns) {
  // vector(4, 1, 1, bytes(2)) is 4 adjacent 2-byte blocks: one run.
  const Datatype t = Datatype::vector(4, 1, 1, Datatype::bytes(2));
  EXPECT_EQ(t.plan_segment_count(), 1u);
  // With stride 2 the blocks are separated: 4 runs.
  const Datatype s = Datatype::vector(4, 1, 2, Datatype::bytes(2));
  EXPECT_EQ(s.plan_segment_count(), 4u);
}

TEST(DatatypePlan, FullBoxSubarrayIsContiguous) {
  // The satellite fix: a sub-box equal to the whole array must keep the
  // memcpy fast path.
  const std::vector<int> sizes{4, 3};
  const std::vector<int> zeros{0, 0};
  const Datatype full = Datatype::subarray(sizes, sizes, zeros,
                                           Datatype::bytes(4));
  EXPECT_TRUE(full.contiguous());
  EXPECT_EQ(full.plan_segment_count(), 1u);

  const std::vector<int> sub{4, 2};
  const Datatype partial = Datatype::subarray(sizes, sub, zeros,
                                              Datatype::bytes(4));
  EXPECT_FALSE(partial.contiguous());
}

TEST(DatatypePlan, CopyRegionsMatchesPackUnpackOnRandomTreePairs) {
  // copy_regions(src_type -> dst_type) must produce exactly what
  // pack(src_type) followed by unpack(dst_type) produces, for any pair of
  // types describing the same number of data bytes.
  std::mt19937 rng(1717);
  int tested = 0;
  for (int trial = 0; trial < 600 && tested < 120; ++trial) {
    const Datatype a = random_type(rng, 3);
    const Datatype b = random_type(rng, 3);
    if (a.size() == 0 || b.size() == 0) continue;
    // Counts making the byte totals equal: na * a.size() == nb * b.size().
    const std::size_t lcm = std::lcm(a.size(), b.size());
    const std::size_t na = lcm / a.size();
    const std::size_t nb = lcm / b.size();
    if (na > 16 || nb > 16) continue;
    ++tested;

    const std::vector<std::byte> src = random_bytes(rng, na * a.extent());
    std::vector<std::byte> via_copy(nb * b.extent(), std::byte{0x11});
    std::vector<std::byte> via_packed = via_copy;

    mpi::copy_regions(a, src.data(), na, b, via_copy.data(), nb);

    std::vector<std::byte> dense(lcm);
    a.pack(src.data(), na, dense.data());
    b.unpack(dense.data(), nb, via_packed.data());

    ASSERT_EQ(via_copy, via_packed)
        << "a=" << a.describe() << " b=" << b.describe();
  }
  ASSERT_GE(tested, 50) << "random generator produced too few usable pairs";
}

TEST(DatatypePlan, CopyRegionsZeroBytesIsANoop) {
  const Datatype z = Datatype::bytes(0);
  mpi::copy_regions(z, nullptr, 4, z, nullptr, 2);  // must not crash
}

TEST(DatatypePlan, CopyRegionsRejectsMismatchedByteCounts) {
  const Datatype a = Datatype::bytes(4);
  const Datatype b = Datatype::bytes(3);
  std::vector<std::byte> src(4), dst(3);
  EXPECT_THROW(mpi::copy_regions(a, src.data(), 1, b, dst.data(), 1),
               mpi::Error);
}

TEST(DatatypePlan, QuadCountNeverExceedsSegmentCountOnRandomTrees) {
  // Run compression is lossless bookkeeping: plan_segment_count() stays the
  // number of memcpy runs the legacy walker would make (coalesced), while
  // plan_quad_count() is the stored footprint — never larger, since every
  // quad covers >= 1 run.
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    const Datatype t = random_type(rng, 3);
    EXPECT_LE(t.plan_quad_count(), t.plan_segment_count())
        << "trial " << trial << ": " << t.describe();

    // Cross-check plan_segment_count() against the coalesced run count the
    // plan-driven walker actually executes.
    std::size_t runs = 0;
    PlanToggle on(true);
    t.for_each_segment(1, [&](std::size_t, std::size_t) { ++runs; });
    EXPECT_EQ(runs, t.plan_segment_count())
        << "trial " << trial << ": " << t.describe();
  }
}

TEST(DatatypePlan, QuadsCompressStridedSubarrayAtLeast4x) {
  // The acceptance bar: a strided3d-style subarray (a 32x32x64 brick of a
  // 64^3 float array) has 2048 equal-length equal-stride rows per element;
  // run compression must store them at least 4x smaller. The actual ratio is
  // 32x (64 quads: one per z-plane, each counting 32 rows).
  const std::vector<int> sizes{64, 64, 64};
  const std::vector<int> sub{32, 32, 64};
  const std::vector<int> starts{0, 0, 0};
  const Datatype brick =
      Datatype::subarray(sizes, sub, starts, Datatype::bytes(4),
                         mpi::Order::fortran);
  EXPECT_EQ(brick.plan_segment_count(), 2048u);
  EXPECT_EQ(brick.plan_quad_count(), 64u);
  EXPECT_GE(brick.plan_segment_count() / brick.plan_quad_count(), 4u);
}

TEST(DatatypePlan, SingleRunLanesStoreOneQuadPerRun) {
  // Degenerate trains (no two consecutive equal-length runs with a common
  // stride) fall back to one quad per run — compression never grows a plan.
  const Datatype t = Datatype::vector(4, 1, 2, Datatype::bytes(2));
  EXPECT_EQ(t.plan_quad_count(), 1u);  // 4 runs, one 4-count quad
  const Datatype c = Datatype::vector(4, 1, 1, Datatype::bytes(2));
  EXPECT_EQ(c.plan_quad_count(), 1u);  // fully coalesced: 1 run, 1 quad
}

TEST(DatatypePlan, PrecompileIsIdempotentAndThreadSafeToReuse) {
  const Datatype t = Datatype::vector(3, 1, 2, Datatype::bytes(8));
  t.precompile();
  const std::size_t n1 = t.plan_segment_count();
  t.precompile();
  EXPECT_EQ(t.plan_segment_count(), n1);
  EXPECT_EQ(n1, 3u);
}

}  // namespace
