// Collective operation tests across a range of communicator sizes, including
// non-power-of-two sizes that stress binomial-tree edge cases.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;
using mpi::Op;

class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, BarrierCompletes) {
  mpi::run(GetParam(), [](Comm& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<int> data(4, comm.rank() == root ? root * 7 : -1);
      comm.bcast(data.data(), data.size(), i, root);
      for (int v : data) EXPECT_EQ(v, root * 7);
    }
  });
}

TEST_P(Collectives, ReduceSum) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    const std::vector<int> mine{comm.rank(), comm.rank() * 2};
    std::vector<int> out(2, 0);
    comm.reduce(mine.data(), out.data(), 2, i, Op::sum<int>(), p - 1);
    if (comm.rank() == p - 1) {
      const int expect = p * (p - 1) / 2;
      EXPECT_EQ(out[0], expect);
      EXPECT_EQ(out[1], 2 * expect);
    }
  });
}

TEST_P(Collectives, AllreduceMinMax) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype d = Datatype::of<double>();
    const double mine = static_cast<double>(comm.rank());
    double lo = 0, hi = 0;
    comm.allreduce(&mine, &lo, 1, d, Op::min<double>());
    comm.allreduce(&mine, &hi, 1, d, Op::max<double>());
    EXPECT_DOUBLE_EQ(lo, 0.0);
    EXPECT_DOUBLE_EQ(hi, static_cast<double>(comm.size() - 1));
  });
}

TEST_P(Collectives, GatherToRoot) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    const std::vector<int> mine{comm.rank(), comm.rank() + 100};
    std::vector<int> all(static_cast<std::size_t>(2 * p), -1);
    comm.gather(mine.data(), 2, i, all.data(), 2, i, 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r + 100);
      }
    }
  });
}

TEST_P(Collectives, GathervVariableCounts) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    // Rank r contributes r+1 values, all equal to r.
    const std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                                comm.rank());
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < p; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    std::vector<int> all(static_cast<std::size_t>(total), -1);
    comm.gatherv(mine.data(), mine.size(), i, all.data(), counts, displs, i, 0);
    if (comm.rank() == 0) {
      std::size_t idx = 0;
      for (int r = 0; r < p; ++r)
        for (int k = 0; k <= r; ++k) EXPECT_EQ(all[idx++], r);
    }
  });
}

TEST_P(Collectives, AllgatherEveryoneSeesAll) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    const int mine = comm.rank() * 3;
    std::vector<int> all(static_cast<std::size_t>(p), -1);
    comm.allgather(&mine, 1, i, all.data(), 1, i);
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
  });
}

TEST_P(Collectives, ScatterSlices) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    std::vector<int> src;
    if (comm.rank() == 0)
      for (int r = 0; r < p; ++r) {
        src.push_back(r * 10);
        src.push_back(r * 10 + 1);
      }
    std::vector<int> mine(2, -1);
    comm.scatter(src.data(), 2, i, mine.data(), 2, i, 0);
    EXPECT_EQ(mine[0], comm.rank() * 10);
    EXPECT_EQ(mine[1], comm.rank() * 10 + 1);
  });
}

TEST_P(Collectives, ScattervVariableCounts) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    std::vector<int> src, counts, displs;
    int total = 0;
    for (int r = 0; r < p; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      for (int k = 0; k <= r; ++k) src.push_back(r);
      total += r + 1;
    }
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1), -1);
    comm.scatterv(comm.rank() == 0 ? src.data() : nullptr, counts, displs, i,
                  mine.data(), mine.size(), i, 0);
    for (int v : mine) EXPECT_EQ(v, comm.rank());
  });
}

TEST_P(Collectives, AlltoallTransposesRankMatrix) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    // Element sent from r to q is r*1000 + q.
    std::vector<int> send, recv(static_cast<std::size_t>(p), -1);
    for (int q = 0; q < p; ++q) send.push_back(comm.rank() * 1000 + q);
    comm.alltoall(send.data(), 1, i, recv.data(), 1, i);
    for (int q = 0; q < p; ++q)
      EXPECT_EQ(recv[static_cast<std::size_t>(q)], q * 1000 + comm.rank());
  });
}

TEST_P(Collectives, AlltoallvVariableCounts) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int p = comm.size();
    // r sends q exactly q+1 copies of r.
    std::vector<int> send, scounts, sdispls, rcounts, rdispls;
    int soff = 0, roff = 0;
    for (int q = 0; q < p; ++q) {
      scounts.push_back(q + 1);
      sdispls.push_back(soff);
      for (int k = 0; k <= q; ++k) send.push_back(comm.rank());
      soff += q + 1;
      rcounts.push_back(comm.rank() + 1);
      rdispls.push_back(roff);
      roff += comm.rank() + 1;
    }
    std::vector<int> recv(static_cast<std::size_t>(roff), -1);
    comm.alltoallv(send.data(), scounts, sdispls, i, recv.data(), rcounts,
                   rdispls, i);
    std::size_t idx = 0;
    for (int q = 0; q < p; ++q)
      for (int k = 0; k <= comm.rank(); ++k) EXPECT_EQ(recv[idx++], q);
  });
}

TEST_P(Collectives, ScanComputesInclusivePrefix) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int mine = comm.rank() + 1;
    int prefix = -1;
    comm.scan(&mine, &prefix, 1, i, Op::sum<int>());
    const int r = comm.rank() + 1;
    EXPECT_EQ(prefix, r * (r + 1) / 2);
  });
}

TEST_P(Collectives, ExscanComputesExclusivePrefix) {
  mpi::run(GetParam(), [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const int mine = comm.rank() + 1;
    int prefix = -42;
    comm.exscan(&mine, &prefix, 1, i, Op::sum<int>());
    if (comm.rank() == 0) {
      EXPECT_EQ(prefix, -42);  // rank 0's buffer is untouched
    } else {
      const int r = comm.rank();
      EXPECT_EQ(prefix, r * (r + 1) / 2);
    }
  });
}

TEST(Scan, RespectsOperationOrderForNonCommutativeOps) {
  // String-like concatenation encoded as digit shifting: op(a, b) = a*10+b.
  mpi::run(4, [](Comm& comm) {
    const Datatype i = Datatype::of<int>();
    const mpi::Op concat([](void* inout, const void* in, std::size_t n) {
      auto* a = static_cast<int*>(inout);
      const auto* b = static_cast<const int*>(in);
      for (std::size_t k = 0; k < n; ++k) a[k] = a[k] * 10 + b[k];
    });
    const int mine = comm.rank() + 1;
    int prefix = 0;
    comm.scan(&mine, &prefix, 1, i, concat);
    const int expect[] = {1, 12, 123, 1234};
    EXPECT_EQ(prefix, expect[comm.rank()]);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 27),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(Collectives2, GathervWithSubarrayRecvType) {
  // Root receives each rank's row directly into column `r` of a matrix by
  // using a resized column subarray as the receive type — exercising
  // extent-based displacement arithmetic.
  mpi::run(3, [](Comm& comm) {
    const Datatype b = Datatype::bytes(1);
    const int p = comm.size();
    std::vector<std::byte> mine(4, std::byte(10 * comm.rank()));
    std::vector<std::byte> matrix(static_cast<std::size_t>(4 * p),
                                  std::byte{0xFF});
    // Column type on a 4 x p matrix: 4 rows, 1 col; resize its extent to one
    // byte so displacement r selects column r.
    const int sizes[] = {4, p}, sub[] = {4, 1}, st[] = {0, 0};
    const Datatype col =
        Datatype::resized(Datatype::subarray(sizes, sub, st, b), 1);
    std::vector<int> counts(static_cast<std::size_t>(p), 1);
    std::vector<int> displs;
    for (int r = 0; r < p; ++r) displs.push_back(r);
    comm.gatherv(mine.data(), 4, b, matrix.data(), counts, displs, col, 0);
    if (comm.rank() == 0) {
      for (int row = 0; row < 4; ++row)
        for (int c = 0; c < p; ++c)
          EXPECT_EQ(matrix[static_cast<std::size_t>(row * p + c)],
                    std::byte(10 * c))
              << "row " << row << " col " << c;
    }
  });
}

TEST(Collectives2, AlltoallWithNonContiguousTypes) {
  // Send every other int; receive into every other slot.
  mpi::run(2, [](Comm& comm) {
    const Datatype strided = Datatype::vector(2, 1, 2, Datatype::of<int>());
    // Per peer: one strided element (2 ints at stride 2 -> extent 3 ints).
    std::vector<int> send(12, -1), recv(12, -9);
    for (int peer = 0; peer < 2; ++peer) {
      send[static_cast<std::size_t>(3 * peer)] = comm.rank() * 100 + peer;
      send[static_cast<std::size_t>(3 * peer + 2)] = comm.rank() * 100 + peer + 50;
    }
    comm.alltoall(send.data(), 1, strided, recv.data(), 1, strided);
    for (int peer = 0; peer < 2; ++peer) {
      EXPECT_EQ(recv[static_cast<std::size_t>(3 * peer)],
                peer * 100 + comm.rank());
      EXPECT_EQ(recv[static_cast<std::size_t>(3 * peer + 1)], -9);  // hole
      EXPECT_EQ(recv[static_cast<std::size_t>(3 * peer + 2)],
                peer * 100 + comm.rank() + 50);
    }
  });
}

TEST(Alltoallw, SubarrayTypesRedistributeRowsToColumns) {
  // 2 ranks share a 4x4 byte matrix: rank 0 owns rows 0-1, rank 1 rows 2-3.
  // After alltoallw, rank 0 holds columns 0-1, rank 1 columns 2-3.
  mpi::run(2, [](Comm& comm) {
    const int r = comm.rank();
    const Datatype b = Datatype::bytes(1);
    // Owned: 2x4 slab. Value at global (row, col) = row * 4 + col.
    std::vector<std::byte> own(8);
    for (int row = 0; row < 2; ++row)
      for (int col = 0; col < 4; ++col)
        own[static_cast<std::size_t>(row * 4 + col)] =
            std::byte((row + 2 * r) * 4 + col);
    // Needed: 4x2 slab of columns.
    std::vector<std::byte> need(8, std::byte{0xFF});

    const int own_sizes[] = {2, 4};   // rows x cols of the owned slab
    const int need_sizes[] = {4, 2};  // rows x cols of the needed slab

    std::vector<int> counts(2, 1);
    std::vector<std::ptrdiff_t> zero_d(2, 0);
    std::vector<Datatype> stypes, rtypes;
    for (int q = 0; q < 2; ++q) {
      // Send: my 2 rows restricted to q's 2 columns.
      const int ssub[] = {2, 2}, sst[] = {0, 2 * q};
      stypes.push_back(Datatype::subarray(own_sizes, ssub, sst, b));
      // Recv: q's 2 rows of my column slab.
      const int rsub[] = {2, 2}, rst[] = {2 * q, 0};
      rtypes.push_back(Datatype::subarray(need_sizes, rsub, rst, b));
    }
    comm.alltoallw(own.data(), counts, zero_d, stypes, need.data(), counts,
                   zero_d, rtypes);

    for (int row = 0; row < 4; ++row)
      for (int col = 0; col < 2; ++col)
        EXPECT_EQ(need[static_cast<std::size_t>(row * 2 + col)],
                  std::byte(row * 4 + col + 2 * r))
            << "row " << row << " col " << col;
  });
}

TEST(Alltoallw, MismatchedCountsThrowTruncate) {
  EXPECT_THROW(
      mpi::run(2,
               [](Comm& comm) {
                 const Datatype b4 = Datatype::bytes(4);
                 const Datatype b8 = Datatype::bytes(8);
                 std::vector<std::byte> buf(32);
                 std::vector<int> counts(2, 1);
                 std::vector<std::ptrdiff_t> d(2, 0);
                 std::vector<Datatype> st(2, b4), rt(2, b8);
                 comm.alltoallw(buf.data(), counts, d, st, buf.data(), counts,
                                d, rt);
               }),
      mpi::Error);
}

TEST(Split, ColorGroupsFormDisjointComms) {
  mpi::run(6, [](Comm& comm) {
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, comm.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    EXPECT_EQ(sub.world_rank(sub.rank()), comm.rank());

    // A reduction inside the sub-communicator only sees members.
    const int mine = comm.rank();
    int sum = 0;
    sub.allreduce(&mine, &sum, 1, Datatype::of<int>(), Op::sum<int>());
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(Split, NegativeColorYieldsInvalidComm) {
  mpi::run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() == 0 ? -1 : 0, 0);
    if (comm.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(Split, KeyControlsOrdering) {
  mpi::run(4, [](Comm& comm) {
    // Reverse the ranks via descending keys.
    Comm sub = comm.split(0, comm.size() - comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, DupPreservesSizeAndRank) {
  mpi::run(5, [](Comm& comm) {
    Comm d = comm.dup();
    EXPECT_EQ(d.size(), comm.size());
    EXPECT_EQ(d.rank(), comm.rank());
    d.barrier();
  });
}

TEST(Split, MToNGroupsCanTalkViaParent) {
  // The in-transit pattern: world splits into producers and consumers,
  // cross-group traffic still flows through the parent communicator.
  mpi::run(6, [](Comm& comm) {
    const bool producer = comm.rank() < 4;
    Comm group = comm.split(producer ? 0 : 1, comm.rank());
    EXPECT_EQ(group.size(), producer ? 4 : 2);
    const Datatype i = Datatype::of<int>();
    if (producer) {
      const int consumer_world = 4 + (comm.rank() % 2);
      const int v = comm.rank();
      comm.send(&v, 1, i, consumer_world, 0);
    } else {
      int sum = 0;
      for (int k = 0; k < 2; ++k) {
        int got = 0;
        comm.recv(&got, 1, i, mpi::any_source, 0);
        sum += got;
      }
      // Consumer 4 hears from {0, 2}; consumer 5 from {1, 3}.
      EXPECT_EQ(sum, comm.rank() == 4 ? 2 : 4);
    }
  });
}

}  // namespace
