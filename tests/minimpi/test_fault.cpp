// Fault-injection layer and deadlock watchdog: message fates (drop,
// duplicate, delay), rank kills, the all-blocked watchdog, and recovery via
// failed_ranks()/shrink().

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;

/// Drops every user-channel message.
class DropAllUser final : public mpi::FaultModel {
 public:
  mpi::MsgFate on_message(const mpi::MsgContext& ctx) override {
    mpi::MsgFate fate;
    fate.drop = !ctx.collective;
    return fate;
  }
};

/// Duplicates every user-channel message once.
class DuplicateAllUser final : public mpi::FaultModel {
 public:
  mpi::MsgFate on_message(const mpi::MsgContext& ctx) override {
    mpi::MsgFate fate;
    if (!ctx.collective) fate.extra_copies = 1;
    return fate;
  }
};

/// Delays every user-channel message by a fixed virtual time.
class DelayAllUser final : public mpi::FaultModel {
 public:
  explicit DelayAllUser(double delay_s) : delay_s_(delay_s) {}
  mpi::MsgFate on_message(const mpi::MsgContext& ctx) override {
    mpi::MsgFate fate;
    if (!ctx.collective) fate.delay_s = delay_s_;
    return fate;
  }

 private:
  double delay_s_;
};

/// Kills one world rank at its first MPI entry point.
class KillRank final : public mpi::FaultModel {
 public:
  explicit KillRank(int target) : target_(target) {}
  bool should_kill(int world_rank, double) override {
    return world_rank == target_;
  }

 private:
  int target_;
};

TEST(Fault, DroppedMessagesTriggerDeadlockWatchdog) {
  // Every user message is dropped, so both ranks block in recv forever; the
  // watchdog must convert the hang into ErrorClass::deadlock on BOTH ranks.
  DropAllUser fault;
  mpi::RunOptions opts;
  opts.fault = &fault;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> deadlocked{0};
  mpi::run(
      2,
      [&](Comm& comm) {
        const int peer = 1 - comm.rank();
        const int v = comm.rank();
        comm.send(&v, 1, Datatype::of<int>(), peer, 7);
        int got = -1;
        try {
          comm.recv(&got, 1, Datatype::of<int>(), peer, 7);
          FAIL() << "recv of a dropped message returned";
        } catch (const mpi::Error& e) {
          EXPECT_EQ(e.error_class(), mpi::ErrorClass::deadlock);
          deadlocked.fetch_add(1);
        }
      },
      opts);
  EXPECT_EQ(deadlocked.load(), 2);
}

TEST(Fault, ApplicationDeadlockDetectedWithoutFaultModel) {
  // The watchdog is independent of fault injection: a plain application
  // deadlock (both ranks receive on a tag nobody sends) is diagnosed too.
  mpi::RunOptions opts;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> deadlocked{0};
  mpi::run(
      2,
      [&](Comm& comm) {
        int got = -1;
        try {
          comm.recv(&got, 1, Datatype::of<int>(), 1 - comm.rank(), 99);
          FAIL() << "recv with no matching send returned";
        } catch (const mpi::Error& e) {
          EXPECT_EQ(e.error_class(), mpi::ErrorClass::deadlock);
          deadlocked.fetch_add(1);
        }
      },
      opts);
  EXPECT_EQ(deadlocked.load(), 2);
}

TEST(Fault, WatchdogDisabledLeavesAbortSemanticsIntact) {
  // With the watchdog off, the classic abort path must still work: one rank
  // throws, the blocked rank is woken with the abort error.
  mpi::RunOptions opts;
  opts.deadlock_grace_s = 0.0;
  EXPECT_THROW(mpi::run(
                   2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) throw std::runtime_error("boom");
                     int v;
                     comm.recv(&v, 1, Datatype::of<int>(), 1, 0);
                   },
                   opts),
               std::runtime_error);
}

TEST(Fault, DuplicatedMessageIsDeliveredTwice) {
  DuplicateAllUser fault;
  mpi::RunOptions opts;
  opts.fault = &fault;
  mpi::run(
      2,
      [](Comm& comm) {
        const Datatype i = Datatype::of<int>();
        if (comm.rank() == 0) {
          const int v = 42;
          comm.send(&v, 1, i, 1, 3);
          comm.barrier();
        } else {
          int a = -1, b = -1;
          comm.recv(&a, 1, i, 0, 3);
          comm.recv(&b, 1, i, 0, 3);  // the duplicate
          EXPECT_EQ(a, 42);
          EXPECT_EQ(b, 42);
          comm.barrier();
          EXPECT_FALSE(comm.iprobe(0, 3).has_value());
        }
      },
      opts);
}

TEST(Fault, DelayedMessageChargesVirtualTime) {
  DelayAllUser fault(1.5);
  mpi::RunOptions opts;
  opts.fault = &fault;
  const mpi::RunResult res = mpi::run(
      2,
      [](Comm& comm) {
        const Datatype i = Datatype::of<int>();
        if (comm.rank() == 0) {
          const int v = 1;
          comm.send(&v, 1, i, 1, 0);
        } else {
          int v;
          comm.recv(&v, 1, i, 0, 0);
          // Causality: the receiver's clock reaches the delayed departure.
          EXPECT_GE(comm.clock().now(), 1.5);
        }
      },
      opts);
  EXPECT_GE(res.vtimes[1], 1.5);
}

TEST(Fault, KilledRankDiesSilentlyWhenNobodyDependsOnIt) {
  // Rank 2 is killed at its first MPI call; the other ranks never talk to it
  // and the run must succeed.
  KillRank fault(2);
  mpi::RunOptions opts;
  opts.fault = &fault;
  std::atomic<int> finished{0};
  mpi::run(
      3,
      [&](Comm& comm) {
        if (comm.rank() == 2) {
          const int v = 0;
          comm.send(&v, 1, Datatype::of<int>(), 2, 0);  // dies here
          FAIL() << "killed rank survived its MPI call";
        }
        const Datatype i = Datatype::of<int>();
        if (comm.rank() == 0) {
          const int v = 5;
          comm.send(&v, 1, i, 1, 0);
        } else {
          int v;
          comm.recv(&v, 1, i, 0, 0);
          EXPECT_EQ(v, 5);
        }
        finished.fetch_add(1);
      },
      opts);
  EXPECT_EQ(finished.load(), 2);
}

TEST(Fault, KilledRankSurvivorsShrinkAndContinue) {
  // The acceptance scenario at the minimpi level: rank 3 dies, the
  // survivors' collective deadlocks, the watchdog reports it, and the
  // survivors rebuild on a shrunk communicator and finish the job.
  KillRank fault(3);
  mpi::RunOptions opts;
  opts.fault = &fault;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> recovered{0};
  mpi::run(
      4,
      [&](Comm& comm) {
        const Datatype i = Datatype::of<int>();
        int sum = 0;
        const int one = 1;
        if (comm.rank() == 3) {
          comm.allreduce(&one, &sum, 1, i, mpi::Op::sum<int>());  // dies here
          FAIL() << "killed rank survived";
        }
        try {
          comm.allreduce(&one, &sum, 1, i, mpi::Op::sum<int>());
          FAIL() << "collective with a dead participant completed";
        } catch (const mpi::Error& e) {
          ASSERT_EQ(e.error_class(), mpi::ErrorClass::deadlock);
        }
        const std::vector<int> failed = comm.failed_ranks();
        ASSERT_EQ(failed, std::vector<int>{3});
        Comm survivors = comm.shrink();
        ASSERT_EQ(survivors.size(), 3);
        EXPECT_EQ(survivors.world_rank(survivors.rank()), comm.rank());
        int total = 0;
        survivors.allreduce(&one, &total, 1, i, mpi::Op::sum<int>());
        EXPECT_EQ(total, 3);
        recovered.fetch_add(1);
      },
      opts);
  EXPECT_EQ(recovered.load(), 3);
}

TEST(Fault, TagAboveCeilingRejected) {
  mpi::run(1, [](Comm& comm) {
    const int v = 0;
    try {
      comm.send(&v, 1, Datatype::of<int>(), 0, mpi::tag_upper_bound);
      FAIL() << "tag at the ceiling accepted";
    } catch (const mpi::Error& e) {
      EXPECT_EQ(e.error_class(), mpi::ErrorClass::invalid_tag);
    }
    // The highest legal tag still works.
    comm.send(&v, 1, Datatype::of<int>(), 0, mpi::tag_upper_bound - 1);
    int got = -1;
    comm.recv(&got, 1, Datatype::of<int>(), 0, mpi::tag_upper_bound - 1);
    EXPECT_EQ(got, 0);
  });
}

TEST(Fault, CheckpointThrowsPendingAbort) {
  // checkpoint() is the cancellation point for non-blocking progress loops:
  // it must surface another rank's failure instead of letting the loop spin.
  EXPECT_THROW(mpi::run(2,
                        [](Comm& comm) {
                          if (comm.rank() == 1) throw std::runtime_error("x");
                          for (;;) comm.checkpoint();
                        }),
               std::runtime_error);
}

}  // namespace
