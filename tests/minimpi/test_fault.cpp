// Fault-injection layer and deadlock watchdog: message fates (drop,
// duplicate, delay), rank kills, the all-blocked watchdog, and recovery via
// failed_ranks()/shrink().

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "minimpi/minimpi.hpp"
#include "trace/trace.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;

/// Drops every user-channel message.
class DropAllUser final : public mpi::FaultModel {
 public:
  mpi::MsgFate on_message(const mpi::MsgContext& ctx) override {
    mpi::MsgFate fate;
    fate.drop = !ctx.collective;
    return fate;
  }
};

/// Duplicates every user-channel message once.
class DuplicateAllUser final : public mpi::FaultModel {
 public:
  mpi::MsgFate on_message(const mpi::MsgContext& ctx) override {
    mpi::MsgFate fate;
    if (!ctx.collective) fate.extra_copies = 1;
    return fate;
  }
};

/// Delays every user-channel message by a fixed virtual time.
class DelayAllUser final : public mpi::FaultModel {
 public:
  explicit DelayAllUser(double delay_s) : delay_s_(delay_s) {}
  mpi::MsgFate on_message(const mpi::MsgContext& ctx) override {
    mpi::MsgFate fate;
    if (!ctx.collective) fate.delay_s = delay_s_;
    return fate;
  }

 private:
  double delay_s_;
};

/// Kills one world rank at its first MPI entry point.
class KillRank final : public mpi::FaultModel {
 public:
  explicit KillRank(int target) : target_(target) {}
  bool should_kill(int world_rank, double) override {
    return world_rank == target_;
  }

 private:
  int target_;
};

TEST(Fault, DroppedMessagesTriggerDeadlockWatchdog) {
  // Every user message is dropped, so both ranks block in recv forever; the
  // watchdog must convert the hang into ErrorClass::deadlock on BOTH ranks.
  DropAllUser fault;
  mpi::RunOptions opts;
  opts.fault = &fault;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> deadlocked{0};
  mpi::run(
      2,
      [&](Comm& comm) {
        const int peer = 1 - comm.rank();
        const int v = comm.rank();
        comm.send(&v, 1, Datatype::of<int>(), peer, 7);
        int got = -1;
        try {
          comm.recv(&got, 1, Datatype::of<int>(), peer, 7);
          FAIL() << "recv of a dropped message returned";
        } catch (const mpi::Error& e) {
          EXPECT_EQ(e.error_class(), mpi::ErrorClass::deadlock);
          deadlocked.fetch_add(1);
        }
      },
      opts);
  EXPECT_EQ(deadlocked.load(), 2);
}

TEST(Fault, ApplicationDeadlockDetectedWithoutFaultModel) {
  // The watchdog is independent of fault injection: a plain application
  // deadlock (both ranks receive on a tag nobody sends) is diagnosed too.
  mpi::RunOptions opts;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> deadlocked{0};
  mpi::run(
      2,
      [&](Comm& comm) {
        int got = -1;
        try {
          comm.recv(&got, 1, Datatype::of<int>(), 1 - comm.rank(), 99);
          FAIL() << "recv with no matching send returned";
        } catch (const mpi::Error& e) {
          EXPECT_EQ(e.error_class(), mpi::ErrorClass::deadlock);
          deadlocked.fetch_add(1);
        }
      },
      opts);
  EXPECT_EQ(deadlocked.load(), 2);
}

TEST(Fault, WatchdogDisabledLeavesAbortSemanticsIntact) {
  // With the watchdog off, the classic abort path must still work: one rank
  // throws, the blocked rank is woken with the abort error.
  mpi::RunOptions opts;
  opts.deadlock_grace_s = 0.0;
  EXPECT_THROW(mpi::run(
                   2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) throw std::runtime_error("boom");
                     int v;
                     comm.recv(&v, 1, Datatype::of<int>(), 1, 0);
                   },
                   opts),
               std::runtime_error);
}

TEST(Fault, DuplicatedMessageIsDeliveredTwice) {
  DuplicateAllUser fault;
  mpi::RunOptions opts;
  opts.fault = &fault;
  mpi::run(
      2,
      [](Comm& comm) {
        const Datatype i = Datatype::of<int>();
        if (comm.rank() == 0) {
          const int v = 42;
          comm.send(&v, 1, i, 1, 3);
          comm.barrier();
        } else {
          int a = -1, b = -1;
          comm.recv(&a, 1, i, 0, 3);
          comm.recv(&b, 1, i, 0, 3);  // the duplicate
          EXPECT_EQ(a, 42);
          EXPECT_EQ(b, 42);
          comm.barrier();
          EXPECT_FALSE(comm.iprobe(0, 3).has_value());
        }
      },
      opts);
}

TEST(Fault, DelayedMessageChargesVirtualTime) {
  DelayAllUser fault(1.5);
  mpi::RunOptions opts;
  opts.fault = &fault;
  const mpi::RunResult res = mpi::run(
      2,
      [](Comm& comm) {
        const Datatype i = Datatype::of<int>();
        if (comm.rank() == 0) {
          const int v = 1;
          comm.send(&v, 1, i, 1, 0);
        } else {
          int v;
          comm.recv(&v, 1, i, 0, 0);
          // Causality: the receiver's clock reaches the delayed departure.
          EXPECT_GE(comm.clock().now(), 1.5);
        }
      },
      opts);
  EXPECT_GE(res.vtimes[1], 1.5);
}

TEST(Fault, KilledRankDiesSilentlyWhenNobodyDependsOnIt) {
  // Rank 2 is killed at its first MPI call; the other ranks never talk to it
  // and the run must succeed.
  KillRank fault(2);
  mpi::RunOptions opts;
  opts.fault = &fault;
  std::atomic<int> finished{0};
  mpi::run(
      3,
      [&](Comm& comm) {
        if (comm.rank() == 2) {
          const int v = 0;
          comm.send(&v, 1, Datatype::of<int>(), 2, 0);  // dies here
          FAIL() << "killed rank survived its MPI call";
        }
        const Datatype i = Datatype::of<int>();
        if (comm.rank() == 0) {
          const int v = 5;
          comm.send(&v, 1, i, 1, 0);
        } else {
          int v;
          comm.recv(&v, 1, i, 0, 0);
          EXPECT_EQ(v, 5);
        }
        finished.fetch_add(1);
      },
      opts);
  EXPECT_EQ(finished.load(), 2);
}

TEST(Fault, KilledRankSurvivorsShrinkAndContinue) {
  // The acceptance scenario at the minimpi level: rank 3 dies, the
  // survivors' collective deadlocks, the watchdog reports it, and the
  // survivors rebuild on a shrunk communicator and finish the job.
  KillRank fault(3);
  mpi::RunOptions opts;
  opts.fault = &fault;
  opts.deadlock_grace_s = 0.1;
  std::atomic<int> recovered{0};
  mpi::run(
      4,
      [&](Comm& comm) {
        const Datatype i = Datatype::of<int>();
        int sum = 0;
        const int one = 1;
        if (comm.rank() == 3) {
          comm.allreduce(&one, &sum, 1, i, mpi::Op::sum<int>());  // dies here
          FAIL() << "killed rank survived";
        }
        try {
          comm.allreduce(&one, &sum, 1, i, mpi::Op::sum<int>());
          FAIL() << "collective with a dead participant completed";
        } catch (const mpi::Error& e) {
          ASSERT_EQ(e.error_class(), mpi::ErrorClass::deadlock);
        }
        const std::vector<int> failed = comm.failed_ranks();
        ASSERT_EQ(failed, std::vector<int>{3});
        Comm survivors = comm.shrink();
        ASSERT_EQ(survivors.size(), 3);
        EXPECT_EQ(survivors.world_rank(survivors.rank()), comm.rank());
        int total = 0;
        survivors.allreduce(&one, &total, 1, i, mpi::Op::sum<int>());
        EXPECT_EQ(total, 3);
        recovered.fetch_add(1);
      },
      opts);
  EXPECT_EQ(recovered.load(), 3);
}

TEST(Fault, ThrowingCollectiveClosesTraceSpans) {
  // Span lifetime under failure: when a collective dies with a deadlock
  // error, every trace span opened on the failing path (the collective's own
  // span plus any application span around it) must be closed by unwinding,
  // so the recorded stream stays balanced and the Chrome-trace JSON
  // serialization stays well-formed.
  KillRank fault(3);
  mpi::RunOptions opts;
  opts.fault = &fault;
  opts.deadlock_grace_s = 0.1;
  std::vector<trace::Recorder> recs;
  recs.reserve(4);
  for (int r = 0; r < 4; ++r) recs.emplace_back(r);
  std::atomic<int> survived{0};
  mpi::run(
      4,
      [&](Comm& comm) {
        const int r = comm.rank();
        trace::ScopedRecorder sr(&recs[static_cast<std::size_t>(r)]);
        const Datatype i = Datatype::of<int>();
        const int one = 1;
        int sum = 0;
        if (r == 3) {
          comm.allreduce(&one, &sum, 1, i, mpi::Op::sum<int>());  // dies here
          FAIL() << "killed rank survived";
        }
        try {
          DDR_TRACE_SPAN(app, "app.step");
          comm.allreduce(&one, &sum, 1, i, mpi::Op::sum<int>());
          FAIL() << "collective with a dead participant completed";
        } catch (const mpi::Error& e) {
          ASSERT_EQ(e.error_class(), mpi::ErrorClass::deadlock);
        }
        // Unwinding must have closed everything the failing call opened.
        EXPECT_EQ(recs[static_cast<std::size_t>(r)].open_spans(), 0u)
            << "rank " << r;
        survived.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survived.load(), 3);

  std::vector<const trace::Recorder*> survivors;
  for (int r = 0; r < 3; ++r) {
    const auto& ev = recs[static_cast<std::size_t>(r)].events();
    EXPECT_TRUE(trace::spans_balanced(ev)) << "rank " << r;
    EXPECT_EQ(trace::count_events(ev, "app.step", trace::Phase::begin), 1u);
    EXPECT_EQ(trace::count_events(ev, "app.step", trace::Phase::end), 1u);
    survivors.push_back(&recs[static_cast<std::size_t>(r)]);
  }
  // The serialized Chrome trace must pair every "B" with an "E" and close
  // the JSON object even though the traced run died mid-collective.
  std::ostringstream os;
  trace::write_chrome_json(os, survivors, "fault");
  const std::string json = os.str();
  std::size_t begins = 0, ends = 0;
  for (std::size_t p = json.find("\"ph\":\"B\""); p != std::string::npos;
       p = json.find("\"ph\":\"B\"", p + 1))
    ++begins;
  for (std::size_t p = json.find("\"ph\":\"E\""); p != std::string::npos;
       p = json.find("\"ph\":\"E\"", p + 1))
    ++ends;
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("]}"), std::string::npos);
}

TEST(Fault, TagAboveCeilingRejected) {
  mpi::run(1, [](Comm& comm) {
    const int v = 0;
    try {
      comm.send(&v, 1, Datatype::of<int>(), 0, mpi::tag_upper_bound);
      FAIL() << "tag at the ceiling accepted";
    } catch (const mpi::Error& e) {
      EXPECT_EQ(e.error_class(), mpi::ErrorClass::invalid_tag);
    }
    // The highest legal tag still works.
    comm.send(&v, 1, Datatype::of<int>(), 0, mpi::tag_upper_bound - 1);
    int got = -1;
    comm.recv(&got, 1, Datatype::of<int>(), 0, mpi::tag_upper_bound - 1);
    EXPECT_EQ(got, 0);
  });
}

TEST(Fault, CheckpointThrowsPendingAbort) {
  // checkpoint() is the cancellation point for non-blocking progress loops:
  // it must surface another rank's failure instead of letting the loop spin.
  EXPECT_THROW(mpi::run(2,
                        [](Comm& comm) {
                          if (comm.rank() == 1) throw std::runtime_error("x");
                          for (;;) comm.checkpoint();
                        }),
               std::runtime_error);
}

}  // namespace
