// Property tests of the runtime-dispatched copy-train kernels: for every
// kernel the host supports (scalar always; SSE2/AVX2 when the CPU has them),
// pack, unpack and copy_regions over randomly generated datatype trees must
// be byte-identical to the scalar reference — including misaligned buffer
// bases and odd run lengths that exercise the vector kernels' overlapping
// tail stores.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace {

using mpi::Datatype;

/// RAII restore of the dispatched kernel: "auto" re-runs the env-then-CPU
/// detection, so tests cannot leak a forced kernel into other tests (or
/// override a MINIMPI_PACK_KERNEL the suite was launched with).
class KernelToggle {
 public:
  ~KernelToggle() { mpi::set_pack_kernel("auto"); }
};

/// Kernels the suite can force on THIS host. "scalar" always works; the
/// vector kernels are skipped (not failed) where the CPU lacks them, so the
/// suite is meaningful on any machine while covering every dispatch target
/// on CI hosts with AVX2.
std::vector<std::string> available_kernels() {
  std::vector<std::string> out;
  for (const char* name : {"scalar", "sse2", "avx2"})
    if (mpi::set_pack_kernel(name)) out.emplace_back(name);
  mpi::set_pack_kernel("auto");
  return out;
}

/// Same random datatype-tree generator the plan property suite uses: all
/// constructors reachable, zero-size degenerate forms included.
Datatype random_type(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind_dist(0, depth <= 0 ? 0 : 6);
  std::uniform_int_distribution<int> small(1, 3);
  std::uniform_int_distribution<int> tiny(0, 2);
  switch (kind_dist(rng)) {
    case 0:
      return Datatype::bytes(static_cast<std::size_t>(
          std::uniform_int_distribution<int>(0, 5)(rng)));
    case 1:
      return Datatype::contiguous(static_cast<std::size_t>(tiny(rng)),
                                  random_type(rng, depth - 1));
    case 2: {
      const Datatype inner = random_type(rng, depth - 1);
      const int count = small(rng);
      const int blocklen = small(rng);
      const int stride = blocklen + tiny(rng);
      return Datatype::vector(static_cast<std::size_t>(count),
                              static_cast<std::size_t>(blocklen), stride,
                              inner);
    }
    case 3: {
      const Datatype inner = random_type(rng, depth - 1);
      const int count = small(rng);
      const int blocklen = small(rng);
      const auto stride_bytes = static_cast<std::ptrdiff_t>(
          static_cast<std::size_t>(blocklen) * inner.extent() +
          static_cast<std::size_t>(tiny(rng)));
      return Datatype::hvector(static_cast<std::size_t>(count),
                               static_cast<std::size_t>(blocklen),
                               stride_bytes, inner);
    }
    case 4: {
      const Datatype inner = random_type(rng, depth - 1);
      const int ndims = std::uniform_int_distribution<int>(1, 3)(rng);
      std::vector<int> sizes, subsizes, starts;
      for (int d = 0; d < ndims; ++d) {
        const int n = std::uniform_int_distribution<int>(1, 4)(rng);
        const int sub = std::uniform_int_distribution<int>(0, n)(rng);
        const int start = std::uniform_int_distribution<int>(0, n - sub)(rng);
        sizes.push_back(n);
        subsizes.push_back(sub);
        starts.push_back(start);
      }
      const mpi::Order order =
          tiny(rng) == 0 ? mpi::Order::fortran : mpi::Order::c;
      return Datatype::subarray(sizes, subsizes, starts, inner, order);
    }
    case 5: {
      const int nblocks = small(rng);
      std::vector<int> blocklens;
      std::vector<std::ptrdiff_t> displs;
      std::vector<Datatype> types;
      std::ptrdiff_t cursor = 0;
      for (int b = 0; b < nblocks; ++b) {
        const Datatype t = random_type(rng, depth - 1);
        const int len = tiny(rng);
        cursor += tiny(rng);  // random gap
        blocklens.push_back(len);
        displs.push_back(cursor);
        types.push_back(t);
        cursor += static_cast<std::ptrdiff_t>(
            static_cast<std::size_t>(len) * t.extent());
      }
      return Datatype::strukt(blocklens, displs, types);
    }
    default: {
      const Datatype inner = random_type(rng, depth - 1);
      const int nblocks = small(rng);
      std::vector<int> blocklens, displs;
      int cursor = 0;
      for (int b = 0; b < nblocks; ++b) {
        const int len = tiny(rng);
        cursor += tiny(rng);
        blocklens.push_back(len);
        displs.push_back(cursor);
        cursor += len;
      }
      return Datatype::indexed(blocklens, displs, inner);
    }
  }
}

std::vector<std::byte> random_bytes(std::mt19937& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (std::byte& b : out) b = static_cast<std::byte>(byte_dist(rng));
  return out;
}

TEST(PackKernels, NameIsAlwaysAValidTarget) {
  const std::string name = mpi::pack_kernel_name();
  EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "avx2") << name;
}

TEST(PackKernels, UnknownKernelIsRejectedWithoutSwitching) {
  KernelToggle restore;
  const std::string before = mpi::pack_kernel_name();
  EXPECT_FALSE(mpi::set_pack_kernel("bogus"));
  EXPECT_FALSE(mpi::set_pack_kernel(""));
  EXPECT_EQ(mpi::pack_kernel_name(), before);
}

TEST(PackKernels, ScalarIsAlwaysAvailable) {
  KernelToggle restore;
  EXPECT_TRUE(mpi::set_pack_kernel("scalar"));
  EXPECT_EQ(mpi::pack_kernel_name(), "scalar");
}

// Randomized datatype trees: every supported kernel's pack/unpack must be
// byte-identical to scalar's.
TEST(PackKernels, RandomTreesPackUnpackIdenticalAcrossKernels) {
  KernelToggle restore;
  const std::vector<std::string> kernels = available_kernels();
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 150; ++trial) {
    const Datatype type = random_type(rng, 3);
    const std::size_t count =
        static_cast<std::size_t>(std::uniform_int_distribution<int>(1, 3)(rng));
    const std::vector<std::byte> src =
        random_bytes(rng, count * type.extent() + 8);
    const std::size_t packed_size = count * type.size();

    ASSERT_TRUE(mpi::set_pack_kernel("scalar"));
    std::vector<std::byte> want(packed_size);
    type.pack(src.data(), count, want.data());
    std::vector<std::byte> want_dst = random_bytes(rng, src.size());
    type.unpack(want.data(), count, want_dst.data());

    for (const std::string& k : kernels) {
      ASSERT_TRUE(mpi::set_pack_kernel(k));
      std::vector<std::byte> got(packed_size, std::byte{0x5a});
      type.pack(src.data(), count, got.data());
      EXPECT_EQ(got, want) << "pack kernel=" << k << " trial=" << trial;

      // Unpack into a buffer seeded identically to the scalar run, so gaps
      // the type does not touch must match too.
      std::vector<std::byte> dst = want_dst;
      for (std::byte& b : dst) b ^= std::byte{0xff};
      std::vector<std::byte> ref = dst;
      ASSERT_TRUE(mpi::set_pack_kernel("scalar"));
      type.unpack(want.data(), count, ref.data());
      ASSERT_TRUE(mpi::set_pack_kernel(k));
      type.unpack(want.data(), count, dst.data());
      EXPECT_EQ(dst, ref) << "unpack kernel=" << k << " trial=" << trial;
    }
  }
}

// Misaligned bases and odd run lengths: the vector kernels' head/tail
// handling (overlapping 16/32-byte stores) must never write outside a run.
TEST(PackKernels, MisalignedOddLengthTrainsMatchScalar) {
  KernelToggle restore;
  const std::vector<std::string> kernels = available_kernels();
  std::mt19937 rng(7);
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
        std::size_t{7}, std::size_t{12}, std::size_t{13}, std::size_t{16},
        std::size_t{17}, std::size_t{23}, std::size_t{31}, std::size_t{32},
        std::size_t{33}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{100}}) {
    // 7 runs of `len` bytes, 3-byte gaps between runs, read from a base
    // offset 0..7 into an oversized buffer so every alignment is hit.
    const Datatype type = Datatype::hvector(
        7, 1, static_cast<std::ptrdiff_t>(len + 3), Datatype::bytes(len));
    for (std::size_t mis = 0; mis < 8; ++mis) {
      const std::vector<std::byte> buf =
          random_bytes(rng, type.extent() + mis + 16);
      const std::byte* base = buf.data() + mis;
      ASSERT_TRUE(mpi::set_pack_kernel("scalar"));
      std::vector<std::byte> want(type.size());
      type.pack(base, 1, want.data());
      for (const std::string& k : kernels) {
        ASSERT_TRUE(mpi::set_pack_kernel(k));
        std::vector<std::byte> got(type.size(), std::byte{0});
        type.pack(base, 1, got.data());
        EXPECT_EQ(got, want) << "kernel=" << k << " len=" << len
                             << " misalign=" << mis;
        // Scatter back with a guard band after the extent: the kernel must
        // reproduce the runs and leave the guard untouched.
        std::vector<std::byte> dst(type.extent() + mis + 16, std::byte{0xee});
        type.unpack(want.data(), 1, dst.data() + mis);
        std::vector<std::byte> ref(dst.size(), std::byte{0xee});
        ASSERT_TRUE(mpi::set_pack_kernel("scalar"));
        type.unpack(want.data(), 1, ref.data() + mis);
        EXPECT_EQ(dst, ref) << "kernel=" << k << " len=" << len
                            << " misalign=" << mis;
      }
    }
  }
}

// copy_regions between two different layouts must also be kernel-invariant
// (it runs batched trains when both cursors agree on run length).
TEST(PackKernels, CopyRegionsIdenticalAcrossKernels) {
  KernelToggle restore;
  const std::vector<std::string> kernels = available_kernels();
  std::mt19937 rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const Datatype src_type = random_type(rng, 3);
    Datatype dst_type = random_type(rng, 3);
    // copy_regions requires equal total sizes; retry until they match by
    // construction via a contiguous fallback.
    if (dst_type.size() != src_type.size())
      dst_type = Datatype::bytes(src_type.size());
    const std::vector<std::byte> src =
        random_bytes(rng, src_type.extent() + 8);

    ASSERT_TRUE(mpi::set_pack_kernel("scalar"));
    std::vector<std::byte> want(dst_type.extent() + 8, std::byte{0x11});
    mpi::copy_regions(src_type, src.data(), 1, dst_type, want.data(), 1);
    for (const std::string& k : kernels) {
      ASSERT_TRUE(mpi::set_pack_kernel(k));
      std::vector<std::byte> got(dst_type.extent() + 8, std::byte{0x11});
      mpi::copy_regions(src_type, src.data(), 1, dst_type, got.data(), 1);
      EXPECT_EQ(got, want) << "kernel=" << k << " trial=" << trial;
    }
  }
}

}  // namespace
