// Tests for the simnet cost models: link model arithmetic (sharing,
// saturation, intra-node paths), I/O model (aggregate cap, open latency),
// statistics accumulator, and the thread-CPU timer.

#include <gtest/gtest.h>

#include <cmath>

#include "minimpi/minimpi.hpp"
#include "simnet/models.hpp"
#include "simnet/stats.hpp"
#include "simnet/workclock.hpp"

namespace {

simnet::LinkParams simple_params() {
  simnet::LinkParams p;
  p.latency_s = 1e-3;
  p.link_bandwidth_Bps = 1e9;
  p.ranks_per_node = 2;
  p.send_overhead_s = 1e-4;
  p.send_overhead_s_per_B = 0.0;
  p.recv_overhead_s = 2e-4;
  p.recv_overhead_s_per_B = 0.0;
  p.saturation_bytes = 0.0;
  p.intra_node_bandwidth_Bps = 1e10;
  return p;
}

TEST(LinkModel, InterNodeTransferSharesLink) {
  const simnet::LinkModel m(simple_params());
  // Ranks 0 (node 0) and 2 (node 1): inter-node; effective bw = 1e9/2.
  EXPECT_DOUBLE_EQ(m.transfer_time(5'000'000, 0, 2),
                   1e-3 + 5e6 / (1e9 / 2));
}

TEST(LinkModel, IntraNodeUsesMemoryBandwidth) {
  const simnet::LinkModel m(simple_params());
  // Ranks 0 and 1 share node 0.
  EXPECT_DOUBLE_EQ(m.transfer_time(5'000'000, 0, 1), 1e-3 + 5e6 / 1e10);
}

TEST(LinkModel, SaturationDegradesLargeMessages) {
  simnet::LinkParams p = simple_params();
  p.saturation_bytes = 1e6;
  const simnet::LinkModel m(p);
  const double small = m.transfer_time(1000, 0, 2) - p.latency_s;
  const double big = m.transfer_time(10'000'000, 0, 2) - p.latency_s;
  // 10 MB message: bandwidth divided by (1 + 10) = 11.
  EXPECT_NEAR(big, 1e7 / (1e9 / 2 / 11.0), 1e-9);
  // Small messages are essentially unaffected.
  EXPECT_NEAR(small, 1000 / (1e9 / 2) * 1.001, 1e-9);
}

TEST(LinkModel, OverheadsScaleWithBytes) {
  simnet::LinkParams p = simple_params();
  p.send_overhead_s_per_B = 1e-9;
  const simnet::LinkModel m(p);
  EXPECT_DOUBLE_EQ(m.send_overhead(0), 1e-4);
  EXPECT_DOUBLE_EQ(m.send_overhead(1'000'000), 1e-4 + 1e-3);
  EXPECT_DOUBLE_EQ(m.recv_overhead(123), 2e-4);
}

TEST(LinkModel, CooleyPresetIsSane) {
  const simnet::LinkParams p = simnet::cooley_params();
  EXPECT_NEAR(p.link_bandwidth_Bps, 56e9 / 8, 1e9);  // 56 Gbps in bytes
  EXPECT_EQ(p.ranks_per_node, 2);
  const simnet::LinkModel m(p);
  // A 1 GiB message must take seconds, not milliseconds, on a shared link.
  EXPECT_GT(m.transfer_time(1u << 30, 0, 2), 0.3);
}

TEST(ZeroCostModel, IsFree) {
  const simnet::ZeroCostModel m;
  EXPECT_EQ(m.send_overhead(1e6), 0.0);
  EXPECT_EQ(m.transfer_time(1e6, 0, 5), 0.0);
  EXPECT_EQ(m.recv_overhead(1e6), 0.0);
}

TEST(IoModel, PerRankBandwidthWhenUncontended) {
  simnet::IoModel io;
  io.per_rank_Bps = 1e8;
  io.aggregate_Bps = 1e10;
  io.open_latency_s = 0.01;
  // 4 readers: cap = 2.5e9 > per-rank 1e8 -> per-rank bound.
  EXPECT_DOUBLE_EQ(io.read_time(1e8, 4, 1), 0.01 + 1.0);
}

TEST(IoModel, AggregateCapBindsAtScale) {
  simnet::IoModel io;
  io.per_rank_Bps = 1e8;
  io.aggregate_Bps = 1e10;
  io.open_latency_s = 0.0;
  // 1000 readers: cap = 1e7 < per-rank -> aggregate bound.
  EXPECT_DOUBLE_EQ(io.read_time(1e7, 1000, 1), 1.0);
}

TEST(IoModel, OpenLatencyPerFile) {
  simnet::IoModel io;
  io.per_rank_Bps = 1e9;
  io.open_latency_s = 0.002;
  EXPECT_DOUBLE_EQ(io.read_time(0.0, 1, 50), 0.1);
  EXPECT_DOUBLE_EQ(io.write_time(0.0, 1, 50), 0.1);
}

TEST(Stats, MeanAndStdev) {
  simnet::Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SingleSampleHasZeroStdev) {
  simnet::Stats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
}

TEST(Stats, WelfordIsNumericallyStable) {
  simnet::Stats s;
  // Large offset + small variance: naive sum-of-squares would cancel.
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.mean(), 1e9, 1e-3);
  EXPECT_NEAR(s.stdev(), 0.5, 1e-3);
}

TEST(ThreadCpuTimer, ChargesElapsedCpuTime) {
  mpi::VirtualClock clock;
  {
    simnet::ThreadCpuTimer t(clock);
    double sink = 0;
    for (int i = 0; i < 2'000'000; ++i) sink += std::sqrt(i);
    volatile double guard = sink;  // keep the busy loop alive
    (void)guard;
  }
  EXPECT_GT(clock.now(), 0.0);
  EXPECT_LT(clock.now(), 5.0);  // sanity: busy loop is far below 5 s
}

TEST(ThreadCpuTimer, StopIsIdempotentAndScales) {
  mpi::VirtualClock a, b;
  {
    simnet::ThreadCpuTimer ta(a, 1.0);
    simnet::ThreadCpuTimer tb(b, 100.0);
    double sink = 0;
    for (int i = 0; i < 500'000; ++i) sink += std::sqrt(i);
    volatile double guard = sink;
    (void)guard;
    ta.stop();
    tb.stop();
    ta.stop();  // second stop must not double-charge
  }
  EXPECT_GT(b.now(), a.now());
  // The scaled timer should read roughly 100x (loose bounds: scheduler).
  EXPECT_GT(b.now(), 20.0 * a.now());
}

TEST(VirtualClock, AdvanceAndSyncSemantics) {
  mpi::VirtualClock c;
  c.advance(1.5);
  c.advance(-3.0);  // negative charges ignored
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.sync_to(1.0);  // earlier time: no-op
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.sync_to(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

}  // namespace
