// DVR tests: brick grid factorization, brick placement (complete/disjoint),
// compositing algebra, ray-casting semantics, and serial-vs-distributed
// render equivalence.

#include <gtest/gtest.h>

#include <numeric>

#include "dvr/dvr.hpp"
#include "minimpi/minimpi.hpp"

namespace {

using dvr::Axis;
using dvr::Brick;
using dvr::brick_grid;
using dvr::brick_of;
using dvr::FloatImage;
using dvr::TransferFunction;

TEST(BrickGrid, CubicCountsSplitEvenly) {
  // The paper's scales: 27, 64, 125, 216 ranks over a near-cubic volume.
  for (int k : {3, 4, 5, 6}) {
    const auto g = brick_grid(k * k * k, {4096, 2048, 4096});
    EXPECT_EQ(g[0] * g[1] * g[2], k * k * k);
    // 4096 x 2048 x 4096: the short axis should get the fewest bricks.
    EXPECT_LE(g[1], g[0]);
    EXPECT_LE(g[1], g[2]);
  }
}

TEST(BrickGrid, CubeDomainYieldsCubicGrid) {
  const auto g = brick_grid(27, {300, 300, 300});
  EXPECT_EQ(g, (std::array<int, 3>{3, 3, 3}));
}

TEST(BrickGrid, PrimeCountsStillFactor) {
  const auto g = brick_grid(7, {100, 100, 100});
  EXPECT_EQ(g[0] * g[1] * g[2], 7);
}

TEST(BrickOf, BricksTileTheVolumeExactly) {
  const std::array<int, 3> dims{50, 33, 41};
  for (int p : {1, 4, 12, 27}) {
    const auto grid = brick_grid(p, dims);
    ddr::GlobalLayout layout;
    for (int r = 0; r < p; ++r) {
      layout.owned.push_back({brick_of(r, grid, dims)});
      layout.needed.push_back({brick_of(r, grid, dims)});
    }
    const auto v = ddr::validate_owned(layout);
    EXPECT_TRUE(v.ok()) << "p=" << p << ": " << v.detail;
    EXPECT_EQ(layout.domain().volume(),
              static_cast<std::int64_t>(dims[0]) * dims[1] * dims[2]);
  }
}

TEST(BrickOf, RemainderSpreadOverLeadingBricks) {
  // 10 elements over 3 bricks: 4, 3, 3.
  const std::array<int, 3> grid{3, 1, 1};
  const std::array<int, 3> dims{10, 5, 5};
  EXPECT_EQ(brick_of(0, grid, dims).dims[0], 4);
  EXPECT_EQ(brick_of(1, grid, dims).dims[0], 3);
  EXPECT_EQ(brick_of(1, grid, dims).offsets[0], 4);
  EXPECT_EQ(brick_of(2, grid, dims).offsets[0], 7);
}

Brick solid_brick(const ddr::Chunk& c, float value) {
  Brick b;
  b.chunk = c;
  b.data.assign(static_cast<std::size_t>(c.volume()), value);
  return b;
}

TEST(Raycast, EmptyVolumeIsTransparent) {
  const Brick b = solid_brick(ddr::Chunk::d3(4, 4, 4, 0, 0, 0), 0.0f);
  const FloatImage im = dvr::raycast_brick(b, Axis::z, TransferFunction{});
  for (const auto& p : im.pixels()) EXPECT_EQ(p.a, 0.0f);
}

TEST(Raycast, DenseVolumeAccumulatesOpacity) {
  const Brick b = solid_brick(ddr::Chunk::d3(2, 2, 64, 0, 0, 0), 1.0f);
  const FloatImage im = dvr::raycast_brick(b, Axis::z, TransferFunction{});
  EXPECT_GT(im.at(0, 0).a, 0.9f);
  EXPECT_GT(im.at(1, 1).r, 0.5f);  // tooth colormap is bright at t=1
}

TEST(Raycast, FootprintFollowsAxis) {
  const ddr::Chunk c = ddr::Chunk::d3(4, 5, 6, 10, 20, 30);
  const auto fz = dvr::footprint_of(c, Axis::z);
  EXPECT_EQ(fz.width, 4);
  EXPECT_EQ(fz.height, 5);
  EXPECT_EQ(fz.x0, 10);
  EXPECT_EQ(fz.depth_index, 30);
  const auto fy = dvr::footprint_of(c, Axis::y);
  EXPECT_EQ(fy.width, 4);
  EXPECT_EQ(fy.height, 6);
  EXPECT_EQ(fy.depth_index, 20);
  const auto fx = dvr::footprint_of(c, Axis::x);
  EXPECT_EQ(fx.width, 5);
  EXPECT_EQ(fx.height, 6);
}

TEST(Composite, OverOperatorAlgebra) {
  FloatImage front(1, 1), back(1, 1);
  front.at(0, 0) = {0.5f, 0.0f, 0.0f, 0.5f};  // premultiplied half-red
  back.at(0, 0) = {0.0f, 1.0f, 0.0f, 1.0f};   // opaque green
  dvr::composite_over(front, back);
  EXPECT_FLOAT_EQ(front.at(0, 0).r, 0.5f);
  EXPECT_FLOAT_EQ(front.at(0, 0).g, 0.5f);
  EXPECT_FLOAT_EQ(front.at(0, 0).a, 1.0f);
}

TEST(Composite, OpaqueFrontHidesBack) {
  FloatImage front(1, 1), back(1, 1);
  front.at(0, 0) = {1.0f, 1.0f, 1.0f, 1.0f};
  back.at(0, 0) = {0.0f, 0.0f, 1.0f, 1.0f};
  dvr::composite_over(front, back);
  EXPECT_FLOAT_EQ(front.at(0, 0).b, 1.0f);  // white, not blue
  EXPECT_FLOAT_EQ(front.at(0, 0).r, 1.0f);
}

TEST(Composite, SizeMismatchThrows) {
  FloatImage a(2, 2), b(3, 2);
  EXPECT_THROW(dvr::composite_over(a, b), dvr::Error);
}

TEST(Finalize, BackgroundShowsThroughTransparency) {
  FloatImage acc(1, 1);
  acc.at(0, 0) = {0.0f, 0.0f, 0.0f, 0.0f};
  const img::RgbImage out = dvr::finalize(acc, img::Rgb{10, 20, 30});
  EXPECT_EQ(out.at(0, 0), (img::Rgb{10, 20, 30}));
}

/// Synthetic volume function: a bright diagonal slab.
float field(int x, int y, int z) {
  return (x + y + z) % 7 == 0 ? 0.9f : 0.05f;
}

Brick fill_brick(const ddr::Chunk& c) {
  Brick b;
  b.chunk = c;
  b.data.reserve(static_cast<std::size_t>(c.volume()));
  for (int z = 0; z < c.dims[2]; ++z)
    for (int y = 0; y < c.dims[1]; ++y)
      for (int x = 0; x < c.dims[0]; ++x)
        b.data.push_back(
            field(x + c.offsets[0], y + c.offsets[1], z + c.offsets[2]));
  return b;
}

TEST(DistributedRender, MatchesSerialRender) {
  const std::array<int, 3> dims{24, 24, 24};
  TransferFunction tf;

  // Serial reference: one brick covering the whole volume.
  img::RgbImage serial;
  mpi::run(1, [&](mpi::Comm& comm) {
    const Brick whole = fill_brick(ddr::Chunk::d3(24, 24, 24, 0, 0, 0));
    serial = dvr::distributed_render(comm, whole, dims, Axis::z, tf);
  });
  ASSERT_EQ(serial.width(), 24u);

  // 8-rank render of the same volume.
  img::RgbImage parallel;
  mpi::run(8, [&](mpi::Comm& comm) {
    const auto grid = brick_grid(comm.size(), dims);
    const Brick mine = fill_brick(brick_of(comm.rank(), grid, dims));
    img::RgbImage out = dvr::distributed_render(comm, mine, dims, Axis::z, tf);
    if (comm.rank() == 0) parallel = std::move(out);
  });

  ASSERT_EQ(parallel.width(), serial.width());
  ASSERT_EQ(parallel.height(), serial.height());
  int max_diff = 0;
  for (std::uint32_t y = 0; y < serial.height(); ++y)
    for (std::uint32_t x = 0; x < serial.width(); ++x) {
      const img::Rgb a = serial.at(x, y), b = parallel.at(x, y);
      max_diff = std::max({max_diff, std::abs(a.r - b.r), std::abs(a.g - b.g),
                           std::abs(a.b - b.b)});
    }
  // Compositing splits the ray integral; float associativity differences
  // stay within a couple of 8-bit steps.
  EXPECT_LE(max_diff, 2);
}

TEST(DistributedRender, WorksAlongEveryAxis) {
  const std::array<int, 3> dims{12, 10, 8};
  mpi::run(4, [&](mpi::Comm& comm) {
    const auto grid = brick_grid(comm.size(), dims);
    const Brick mine = fill_brick(brick_of(comm.rank(), grid, dims));
    for (Axis axis : {Axis::x, Axis::y, Axis::z}) {
      const img::RgbImage out =
          dvr::distributed_render(comm, mine, dims, axis, TransferFunction{});
      if (comm.rank() == 0) {
        EXPECT_GT(out.width(), 0u);
        EXPECT_GT(out.height(), 0u);
      } else {
        EXPECT_EQ(out.width(), 0u);
      }
    }
  });
}

TEST(BinarySwap, MatchesDirectSend) {
  const std::array<int, 3> dims{16, 16, 16};
  TransferFunction tf;
  img::RgbImage direct, swap;
  mpi::run(8, [&](mpi::Comm& comm) {
    const auto grid = brick_grid(comm.size(), dims);
    const Brick mine = fill_brick(brick_of(comm.rank(), grid, dims));
    img::RgbImage a = dvr::distributed_render(comm, mine, dims, Axis::z, tf,
                                              dvr::Compositor::direct_send);
    img::RgbImage b = dvr::distributed_render(comm, mine, dims, Axis::z, tf,
                                              dvr::Compositor::binary_swap);
    if (comm.rank() == 0) {
      direct = std::move(a);
      swap = std::move(b);
    }
  });
  ASSERT_EQ(direct.width(), swap.width());
  ASSERT_EQ(direct.height(), swap.height());
  int max_diff = 0;
  for (std::size_t i = 0; i < direct.pixels().size(); ++i) {
    const img::Rgb a = direct.pixels()[i], b = swap.pixels()[i];
    max_diff = std::max({max_diff, std::abs(a.r - b.r), std::abs(a.g - b.g),
                         std::abs(a.b - b.b)});
  }
  // Both compositors apply OVER in depth order; only float association
  // differs.
  EXPECT_LE(max_diff, 1);
}

TEST(BinarySwap, SingleRankIsIdentity) {
  const std::array<int, 3> dims{8, 8, 8};
  mpi::run(1, [&](mpi::Comm& comm) {
    const Brick whole = fill_brick(ddr::Chunk::d3(8, 8, 8, 0, 0, 0));
    const img::RgbImage a = dvr::distributed_render(
        comm, whole, dims, Axis::z, TransferFunction{},
        dvr::Compositor::direct_send);
    const img::RgbImage b = dvr::distributed_render(
        comm, whole, dims, Axis::z, TransferFunction{},
        dvr::Compositor::binary_swap);
    for (std::size_t i = 0; i < a.pixels().size(); ++i)
      EXPECT_EQ(a.pixels()[i], b.pixels()[i]);
  });
}

TEST(BinarySwap, RejectsNonPowerOfTwoRanks) {
  EXPECT_THROW(
      mpi::run(6,
               [](mpi::Comm& comm) {
                 const std::array<int, 3> dims{12, 12, 6};
                 const auto grid = brick_grid(comm.size(), dims);
                 const Brick mine =
                     fill_brick(brick_of(comm.rank(), grid, dims));
                 (void)dvr::distributed_render(comm, mine, dims, Axis::z,
                                               TransferFunction{},
                                               dvr::Compositor::binary_swap);
               }),
      dvr::Error);
}

TEST(Raycast, RejectsBadBricks) {
  Brick b;
  b.chunk = ddr::Chunk::d2(4, 4, 0, 0);  // not 3-D
  b.data.assign(16, 0.0f);
  EXPECT_THROW(dvr::raycast_brick(b, Axis::z, TransferFunction{}), dvr::Error);
  Brick c;
  c.chunk = ddr::Chunk::d3(4, 4, 4, 0, 0, 0);
  c.data.assign(10, 0.0f);  // wrong size
  EXPECT_THROW(dvr::raycast_brick(c, Axis::z, TransferFunction{}), dvr::Error);
}

}  // namespace
