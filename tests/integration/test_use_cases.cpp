// End-to-end integration tests of the paper's two use cases, wired exactly
// like the examples but with assertions instead of printed output.
//
// Use case A (§IV-A): TIFF stack -> DDR load -> distributed DVR render.
// Use case B (§IV-B): LBM simulation -> M-to-N in-transit streaming ->
//                     DDR redistribution -> colormapped JPEG frames.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <span>

#include "ddr/ddr.hpp"
#include "dvr/dvr.hpp"
#include "image/colormap.hpp"
#include "jpegenc/jpeg.hpp"
#include "lbm/lbm.hpp"
#include "loader/tiff_loader.hpp"
#include "minimpi/minimpi.hpp"
#include "stream/stream.hpp"
#include "tiff/phantom.hpp"

namespace {

TEST(UseCaseA, TiffToRenderedImageOnBothStrategiesAndCompositors) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ddr_it_usecase_a").string();
  std::filesystem::remove_all(dir);
  constexpr int kW = 32, kH = 32, kD = 32;
  tiff::write_phantom_series(dir, kW, kH, kD, 16);

  loader::SeriesInfo series;
  series.dir = dir;
  series.width = kW;
  series.height = kH;
  series.depth = kD;
  series.bytes_per_sample = 2;
  series.max_sample_value = 65535.0;

  img::RgbImage reference;
  for (loader::Strategy s : {loader::Strategy::ddr_consecutive,
                             loader::Strategy::ddr_round_robin}) {
    for (dvr::Compositor comp :
         {dvr::Compositor::direct_send, dvr::Compositor::binary_swap}) {
      img::RgbImage out;
      mpi::run(8, [&](mpi::Comm& comm) {
        const dvr::Brick brick = loader::load_brick(comm, series, s);
        dvr::TransferFunction tf;
        tf.colormap = &img::Colormap::tooth();
        img::RgbImage im = dvr::distributed_render(comm, brick, {kW, kH, kD},
                                                   dvr::Axis::y, tf, comp);
        if (comm.rank() == 0) out = std::move(im);
      });
      ASSERT_EQ(out.width(), static_cast<std::uint32_t>(kW));
      ASSERT_EQ(out.height(), static_cast<std::uint32_t>(kD));
      // The tooth phantom must produce a non-black image with structure.
      int bright = 0;
      for (const img::Rgb& p : out.pixels())
        if (p.r + p.g + p.b > 60) ++bright;
      EXPECT_GT(bright, 50);

      if (reference.width() == 0) {
        reference = out;
      } else {
        // Every strategy/compositor combination must agree (within the
        // 8-bit rounding that compositing association allows).
        int max_diff = 0;
        for (std::size_t i = 0; i < out.pixels().size(); ++i) {
          const img::Rgb a = reference.pixels()[i], b = out.pixels()[i];
          max_diff = std::max({max_diff, std::abs(a.r - b.r),
                               std::abs(a.g - b.g), std::abs(a.b - b.b)});
        }
        EXPECT_LE(max_diff, 2);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(UseCaseB, NonUniformInTransitPipelineProducesDecodableFrames) {
  // The paper's Fig. 4 shape: 10 simulation ranks -> 4 analysis ranks
  // (first two consumers hear 3 producers, last two hear 2).
  constexpr int kSim = 10, kViz = 4;
  constexpr int kNx = 80, kNy = 40, kSteps = 60, kEvery = 30;

  lbm::Params params;
  params.nx = kNx;
  params.ny = kNy;
  params.u0 = 0.1;
  params.barrier = lbm::Params::vertical_barrier(20, 13, 26);
  const stream::MNMapping mapping(kSim, kViz);

  std::vector<std::vector<std::byte>> frames_out;
  std::mutex m;

  mpi::run(kSim + kViz, [&](mpi::Comm& world) {
    const bool is_sim = world.rank() < kSim;
    mpi::Comm group = world.split(is_sim ? 0 : 1, world.rank());

    if (is_sim) {
      lbm::DistributedLbm sim(group, params);
      stream::Producer out(world, kSim + mapping.consumer_of(group.rank()));
      for (int step = 1; step <= kSteps; ++step) {
        sim.step();
        if (step % kEvery != 0) continue;
        stream::FrameHeader h;
        h.step = step;
        h.y0 = sim.row_start(group.rank());
        h.ny = sim.row_start(group.rank() + 1) - sim.row_start(group.rank());
        h.nx = kNx;
        out.send_frame(h, sim.local_vorticity());
      }
      return;
    }

    const int c = group.rank();
    const auto [lo, hi] = mapping.producers_of(c);
    // Non-uniform fan-in must hold (3/3/2/2).
    EXPECT_EQ(hi - lo, c < 2 ? 3 : 2);
    std::vector<int> sources;
    for (int p = lo; p < hi; ++p) sources.push_back(p);
    stream::Consumer in(world, sources);

    const auto grid = stream::consumer_grid(kViz, kNx, kNy);
    const ddr::Chunk rect = stream::consumer_rect(c, grid, kNx, kNy);
    ddr::Redistributor rd(group, sizeof(float));
    bool configured = false;
    std::vector<float> rect_data(static_cast<std::size_t>(rect.volume()));

    for (int f = 0; f < kSteps / kEvery; ++f) {
      const auto frames = in.receive_step();
      if (!configured) {
        rd.setup(stream::frames_layout(frames), rect);
        configured = true;
      }
      const auto owned = stream::concat_frames(frames);
      rd.redistribute(std::as_bytes(std::span<const float>(owned)),
                      std::as_writable_bytes(std::span<float>(rect_data)));
      for (float v : rect_data) ASSERT_TRUE(std::isfinite(v));

      // Render the local tile and encode the gathered frame on consumer 0.
      img::RgbImage tile(static_cast<std::uint32_t>(rect.dims[0]),
                         static_cast<std::uint32_t>(rect.dims[1]));
      const img::Colormap& cm = img::Colormap::blue_white_red();
      for (int y = 0; y < rect.dims[1]; ++y)
        for (int x = 0; x < rect.dims[0]; ++x)
          tile.at(static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)) =
              cm.map(rect_data[static_cast<std::size_t>(y * rect.dims[0] + x)],
                     -0.05, 0.05);
      const mpi::Datatype px = mpi::Datatype::bytes(sizeof(img::Rgb));
      if (c != 0) {
        group.send(tile.pixels().data(), tile.pixels().size(), px, 0, 70);
      } else {
        img::RgbImage full(kNx, kNy);
        auto paste = [&](const img::RgbImage& t, const ddr::Chunk& r) {
          for (int y = 0; y < r.dims[1]; ++y)
            for (int x = 0; x < r.dims[0]; ++x)
              full.at(static_cast<std::uint32_t>(r.offsets[0] + x),
                      static_cast<std::uint32_t>(r.offsets[1] + y)) =
                  t.at(static_cast<std::uint32_t>(x),
                       static_cast<std::uint32_t>(y));
        };
        paste(tile, rect);
        for (int q = 1; q < kViz; ++q) {
          const ddr::Chunk r = stream::consumer_rect(q, grid, kNx, kNy);
          img::RgbImage t(static_cast<std::uint32_t>(r.dims[0]),
                          static_cast<std::uint32_t>(r.dims[1]));
          group.recv(t.pixels().data(), t.pixels().size(), px, q, 70);
          paste(t, r);
        }
        std::lock_guard lk(m);
        frames_out.push_back(jpeg::encode(full));
      }
    }
  });

  ASSERT_EQ(frames_out.size(), static_cast<std::size_t>(kSteps / kEvery));
  for (const auto& data : frames_out) {
    // Every frame must decode back to the right dimensions (closing the
    // loop: the whole pipeline produced a valid image).
    const img::RgbImage back = jpeg::decode(data);
    EXPECT_EQ(back.width(), static_cast<std::uint32_t>(kNx));
    EXPECT_EQ(back.height(), static_cast<std::uint32_t>(kNy));
    // And the raw-vs-JPEG reduction regime of Table IV must hold.
    const double raw = 4.0 * kNx * kNy;
    EXPECT_LT(static_cast<double>(data.size()), 0.25 * raw);
  }
}

/// Element sizes from 1 to 16 bytes must all redistribute correctly.
class ElemSizes : public ::testing::TestWithParam<int> {};

TEST_P(ElemSizes, RedistributeArbitraryElementWidths) {
  const auto elem = static_cast<std::size_t>(GetParam());
  mpi::run(3, [elem](mpi::Comm& comm) {
    const int r = comm.rank();
    ddr::Redistributor rd(comm, elem);
    rd.setup({ddr::Chunk::d1(6, 6 * r)}, ddr::Chunk::d1(6, 6 * ((r + 1) % 3)));
    std::vector<std::byte> own(6 * elem), need(6 * elem, std::byte{0});
    for (std::size_t i = 0; i < own.size(); ++i)
      own[i] = static_cast<std::byte>((6 * elem * static_cast<std::size_t>(r) + i) & 0xff);
    rd.redistribute(own, need);
    const auto src_rank = static_cast<std::size_t>((r + 1) % 3);
    for (std::size_t i = 0; i < need.size(); ++i)
      ASSERT_EQ(need[i],
                static_cast<std::byte>((6 * elem * src_rank + i) & 0xff));
  });
}

INSTANTIATE_TEST_SUITE_P(Widths, ElemSizes, ::testing::Values(1, 2, 3, 4, 8, 16),
                         [](const auto& info) {
                           return "bytes" + std::to_string(info.param);
                         });

}  // namespace
