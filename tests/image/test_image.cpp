// Tests for the RGB raster and colormaps.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "image/colormap.hpp"
#include "image/image.hpp"

namespace {

using img::Colormap;
using img::Rgb;
using img::RgbImage;

TEST(RgbImage, ConstructionAndAccess) {
  RgbImage im(4, 3, Rgb{10, 20, 30});
  EXPECT_EQ(im.width(), 4u);
  EXPECT_EQ(im.height(), 3u);
  EXPECT_EQ(im.at(2, 1), (Rgb{10, 20, 30}));
  im.at(3, 2) = Rgb{1, 2, 3};
  EXPECT_EQ(im.at(3, 2), (Rgb{1, 2, 3}));
  EXPECT_EQ(im.pixels().size(), 12u);
}

TEST(RgbImage, PpmEncodingHasHeaderAndPayload) {
  RgbImage im(2, 2);
  im.at(0, 0) = Rgb{255, 0, 0};
  const auto ppm = im.encode_ppm();
  const std::string header(reinterpret_cast<const char*>(ppm.data()), 11);
  EXPECT_EQ(header, "P6\n2 2\n255\n");
  EXPECT_EQ(ppm.size(), 11u + 12u);
  EXPECT_EQ(ppm[11], std::byte{255});  // R of pixel (0,0)
  EXPECT_EQ(ppm[12], std::byte{0});
}

TEST(RgbImage, PpmFileRoundtrip) {
  const auto dir = std::filesystem::temp_directory_path() / "ddr_img";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "t.ppm").string();
  RgbImage im(3, 1);
  im.at(1, 0) = Rgb{9, 8, 7};
  im.write_ppm(path);
  EXPECT_EQ(std::filesystem::file_size(path), im.encode_ppm().size());
  std::filesystem::remove_all(dir);
}

TEST(Colormap, EndpointsAndMidpoint) {
  const Colormap& cm = Colormap::blue_white_red();
  const Rgb lo = cm(0.0), mid = cm(0.5), hi = cm(1.0);
  EXPECT_GT(lo.b, lo.r);               // blue end
  EXPECT_EQ(mid, (Rgb{255, 255, 255}));  // white centre
  EXPECT_GT(hi.r, hi.b);               // red end
}

TEST(Colormap, ClampsOutOfRange) {
  const Colormap& cm = Colormap::grayscale();
  EXPECT_EQ(cm(-3.0), cm(0.0));
  EXPECT_EQ(cm(42.0), cm(1.0));
}

TEST(Colormap, LinearInterpolation) {
  const Colormap& cm = Colormap::grayscale();
  EXPECT_EQ(cm(0.5).r, 128);
  EXPECT_EQ(cm(0.25).g, 64);
}

TEST(Colormap, MapNormalizesRange) {
  const Colormap& cm = Colormap::grayscale();
  EXPECT_EQ(cm.map(5.0, 0.0, 10.0), cm(0.5));
  EXPECT_EQ(cm.map(-1.0, -1.0, 3.0), cm(0.0));
  // Degenerate range maps to the midpoint rather than dividing by zero.
  EXPECT_EQ(cm.map(7.0, 7.0, 7.0), cm(0.5));
}

TEST(Colormap, PresetsAreMonotonicallyBrightening) {
  // tooth() and viridis_like() should brighten with t (density/magnitude).
  for (const Colormap* cm : {&Colormap::tooth(), &Colormap::viridis_like()}) {
    int prev = -1;
    for (double t = 0.0; t <= 1.0; t += 0.1) {
      const Rgb c = (*cm)(t);
      const int luma = 299 * c.r + 587 * c.g + 114 * c.b;
      EXPECT_GE(luma, prev) << "t=" << t;
      prev = luma;
    }
  }
}

TEST(Colormap, RejectsBadStopLists) {
  EXPECT_THROW(Colormap({{0.5, 0, 0, 0}}), img::Error);
  EXPECT_THROW(Colormap({{0.5, 0, 0, 0}, {0.5, 1, 1, 1}}), img::Error);
  EXPECT_THROW(Colormap({{0.8, 0, 0, 0}, {0.2, 1, 1, 1}}), img::Error);
}

}  // namespace
