// PNG writer/reader tests: checksum vectors, container structure, roundtrip
// fidelity (lossless), multi-block streams, and corruption detection.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "image/png.hpp"

namespace {

using img::Rgb;
using img::RgbImage;

std::span<const std::byte> bytes_of(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(PngChecksums, Crc32KnownVectors) {
  EXPECT_EQ(img::crc32({}), 0x00000000u);
  EXPECT_EQ(img::crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(img::crc32(bytes_of("IEND")), 0xAE426082u);  // the famous one
}

TEST(PngChecksums, Adler32KnownVectors) {
  EXPECT_EQ(img::adler32({}), 1u);
  EXPECT_EQ(img::adler32(bytes_of("Wikipedia")), 0x11E60398u);
}

TEST(Png, SignatureAndChunks) {
  RgbImage im(3, 2, Rgb{1, 2, 3});
  const auto data = img::encode_png(im);
  ASSERT_GE(data.size(), 8u);
  EXPECT_EQ(static_cast<std::uint8_t>(data[0]), 0x89);
  EXPECT_EQ(static_cast<char>(data[1]), 'P');
  // IHDR follows immediately; IEND closes the file.
  EXPECT_EQ(static_cast<char>(data[12]), 'I');
  EXPECT_EQ(static_cast<char>(data[13]), 'H');
  EXPECT_EQ(static_cast<char>(data[data.size() - 8]), 'I');
  EXPECT_EQ(static_cast<char>(data[data.size() - 7]), 'E');
  EXPECT_EQ(static_cast<char>(data[data.size() - 6]), 'N');
  EXPECT_EQ(static_cast<char>(data[data.size() - 5]), 'D');
}

TEST(Png, RoundtripIsLossless) {
  RgbImage im(37, 23);
  std::uint32_t state = 777;
  for (auto& p : im.pixels()) {
    state = state * 1664525u + 1013904223u;
    p = Rgb{static_cast<std::uint8_t>(state >> 24),
            static_cast<std::uint8_t>(state >> 16),
            static_cast<std::uint8_t>(state >> 8)};
  }
  const RgbImage back = img::decode_png(img::encode_png(im));
  ASSERT_EQ(back.width(), im.width());
  ASSERT_EQ(back.height(), im.height());
  for (std::size_t i = 0; i < im.pixels().size(); ++i)
    ASSERT_EQ(im.pixels()[i], back.pixels()[i]);
}

TEST(Png, LargeImageUsesMultipleStoredBlocks) {
  // > 64 KiB of scanline data forces several deflate stored blocks.
  RgbImage im(200, 150);
  for (std::uint32_t y = 0; y < im.height(); ++y)
    for (std::uint32_t x = 0; x < im.width(); ++x)
      im.at(x, y) = Rgb{static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y),
                        static_cast<std::uint8_t>(x ^ y)};
  const auto data = img::encode_png(im);
  EXPECT_GT(data.size(), 65536u);
  const RgbImage back = img::decode_png(data);
  EXPECT_EQ(back.at(123, 77), im.at(123, 77));
}

TEST(Png, CorruptionIsDetected) {
  RgbImage im(16, 16, Rgb{50, 60, 70});
  auto data = img::encode_png(im);
  // Flip a payload byte inside IDAT: the chunk CRC must catch it.
  data[data.size() / 2] ^= std::byte{0x40};
  EXPECT_THROW((void)img::decode_png(data), img::Error);
}

TEST(Png, RejectsForeignFiles) {
  EXPECT_THROW((void)img::decode_png({}), img::Error);
  std::vector<std::byte> junk(64, std::byte{0x42});
  EXPECT_THROW((void)img::decode_png(junk), img::Error);
}

TEST(Png, EmptyImageRejected) {
  EXPECT_THROW((void)img::encode_png(RgbImage()), img::Error);
}

TEST(Png, FileIO) {
  const auto dir = std::filesystem::temp_directory_path() / "ddr_png";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "t.png").string();
  RgbImage im(8, 8, Rgb{200, 100, 50});
  img::write_png(path, im);
  EXPECT_GT(std::filesystem::file_size(path), 50u);
  std::filesystem::remove_all(dir);
}

}  // namespace
