// Tests for the synthetic CT phantom used in place of the paper's APS scans.

#include <gtest/gtest.h>

#include <filesystem>

#include "tiff/phantom.hpp"

namespace {

TEST(Phantom, ValuesAreNormalized) {
  for (double z : {0.1, 0.3, 0.5, 0.7, 0.9})
    for (double y : {0.1, 0.5, 0.9})
      for (double x : {0.1, 0.5, 0.9}) {
        const double v = tiff::tooth_phantom(x, y, z);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
}

TEST(Phantom, IsDeterministic) {
  EXPECT_EQ(tiff::tooth_phantom(0.4, 0.5, 0.6), tiff::tooth_phantom(0.4, 0.5, 0.6));
}

TEST(Phantom, HasStructure) {
  // Centre of the crown region is denser than the far corner (air).
  EXPECT_GT(tiff::tooth_phantom(0.5, 0.5, 0.7), tiff::tooth_phantom(0.02, 0.02, 0.02) + 0.3);
  // Pulp chamber is darker than the surrounding dentin.
  EXPECT_LT(tiff::tooth_phantom(0.5, 0.5, 0.62), tiff::tooth_phantom(0.5, 0.75, 0.62));
}

TEST(Phantom, SliceSamplingMatchesField) {
  const auto img = tiff::phantom_slice(32, 16, 3, 10, 16);
  EXPECT_EQ(img.info().width, 32u);
  EXPECT_EQ(img.info().height, 16u);
  const double zn = 3.0 / 9.0;
  const double expect = tiff::tooth_phantom(10.0 / 31.0, 5.0 / 15.0, zn) * 65535.0;
  EXPECT_NEAR(img.value(10, 5), expect, 1.0);
}

TEST(Phantom, SeriesRoundtripsThroughTiff) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ddr_phantom_series";
  std::filesystem::remove_all(dir);
  tiff::write_phantom_series(dir.string(), 16, 8, 4, 32);
  for (int z = 0; z < 4; ++z) {
    const auto img = tiff::read_file(tiff::slice_path(dir.string(), z));
    EXPECT_EQ(img.info().bits_per_sample, 32);
    const auto ref = tiff::phantom_slice(16, 8, z, 4, 32);
    EXPECT_EQ(img.value(7, 3), ref.value(7, 3));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
