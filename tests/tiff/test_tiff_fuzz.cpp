// Robustness tests for the TIFF decoder: corrupted, truncated and randomly
// mutated inputs must produce tiff::Error (or decode successfully when the
// mutation happens to be harmless) — never crash, hang, or read out of
// bounds. These are deterministic fuzz sweeps (fixed seeds).

#include <gtest/gtest.h>

#include <random>

#include "tiff/tiff.hpp"

namespace {

std::vector<std::byte> sample_file() {
  tiff::GrayImage img = tiff::GrayImage::zeros(23, 17, 16);
  for (std::uint32_t y = 0; y < 17; ++y)
    for (std::uint32_t x = 0; x < 23; ++x)
      img.set_value(x, y, (x * 31 + y * 7) % 60000);
  return tiff::encode(img, /*rows_per_strip=*/5);
}

void decode_must_not_crash(std::span<const std::byte> data) {
  try {
    const tiff::GrayImage img = tiff::decode(data);
    // If it decodes, the result must at least be self-consistent.
    EXPECT_EQ(img.pixels().size(), img.info().pixel_bytes());
  } catch (const tiff::Error&) {
    // Expected for most corruptions.
  }
}

TEST(TiffFuzz, EveryTruncationLengthIsHandled) {
  const auto file = sample_file();
  for (std::size_t len = 0; len < file.size(); len += 3) {
    std::vector<std::byte> cut(file.begin(),
                               file.begin() + static_cast<std::ptrdiff_t>(len));
    decode_must_not_crash(cut);
  }
}

TEST(TiffFuzz, SingleByteMutations) {
  const auto file = sample_file();
  std::mt19937 rng(99);
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = file;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] = static_cast<std::byte>(rng() & 0xff);
    decode_must_not_crash(mutated);
  }
}

TEST(TiffFuzz, HeaderRegionMutationsAreMostHostile) {
  const auto file = sample_file();
  std::mt19937 rng(7);
  // Mutate 4 bytes at a time inside the first 64 bytes and the IFD tail.
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = file;
    const bool tail = trial % 2 == 0;
    const std::size_t base = tail ? mutated.size() - 150 : 0;
    for (int k = 0; k < 4; ++k) {
      const std::size_t pos = base + rng() % 140;
      if (pos < mutated.size())
        mutated[pos] = static_cast<std::byte>(rng() & 0xff);
    }
    decode_must_not_crash(mutated);
  }
}

TEST(TiffFuzz, RandomGarbageNeverDecodes) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::byte> junk(16 + rng() % 512);
    for (auto& b : junk) b = static_cast<std::byte>(rng() & 0xff);
    // Forge a plausible magic sometimes to get past the first check.
    if (trial % 3 == 0) {
      junk[0] = std::byte{'I'};
      junk[1] = std::byte{'I'};
      junk[2] = std::byte{42};
      junk[3] = std::byte{0};
    }
    decode_must_not_crash(junk);
  }
}

TEST(TiffFuzz, StripOffsetsPointingEverywhere) {
  // Directly attack the strip table: rebuild a valid file and rewrite the
  // strip-offset word with adversarial values.
  const auto file = sample_file();
  for (std::uint32_t evil : {0u, 7u, 0xffffffffu, 0x7fffffffu,
                             static_cast<std::uint32_t>(file.size())}) {
    auto mutated = file;
    // The single-strip variant keeps StripOffsets inline in the IFD; easier
    // to fuzz the whole tail region with the evil value instead.
    for (std::size_t pos = mutated.size() - 120; pos + 4 <= mutated.size();
         pos += 12) {
      auto m2 = mutated;
      m2[pos] = static_cast<std::byte>(evil & 0xff);
      m2[pos + 1] = static_cast<std::byte>((evil >> 8) & 0xff);
      m2[pos + 2] = static_cast<std::byte>((evil >> 16) & 0xff);
      m2[pos + 3] = static_cast<std::byte>((evil >> 24) & 0xff);
      decode_must_not_crash(m2);
    }
  }
}

}  // namespace
