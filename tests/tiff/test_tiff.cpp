// TIFF codec tests: encode/decode roundtrips across bit depths, strip
// configurations and endianness, file I/O, series helpers, and rejection of
// malformed input.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <random>

#include "tiff/tiff.hpp"

namespace {

using tiff::GrayImage;
using tiff::SampleFormat;

GrayImage gradient(std::uint32_t w, std::uint32_t h, std::uint16_t bits,
                   SampleFormat fmt = SampleFormat::uint_) {
  GrayImage img = GrayImage::zeros(w, h, bits, fmt);
  for (std::uint32_t y = 0; y < h; ++y)
    for (std::uint32_t x = 0; x < w; ++x)
      img.set_value(x, y,
                    fmt == SampleFormat::float_
                        ? 0.25 * x + 1.5 * y
                        : static_cast<double>((x * 7 + y * 131) % 250));
  return img;
}

void expect_images_equal(const GrayImage& a, const GrayImage& b) {
  ASSERT_EQ(a.info().width, b.info().width);
  ASSERT_EQ(a.info().height, b.info().height);
  ASSERT_EQ(a.info().bits_per_sample, b.info().bits_per_sample);
  ASSERT_EQ(a.info().format, b.info().format);
  ASSERT_EQ(a.pixels().size(), b.pixels().size());
  EXPECT_EQ(
      std::memcmp(a.pixels().data(), b.pixels().data(), a.pixels().size()), 0);
}

class Roundtrip
    : public ::testing::TestWithParam<std::tuple<std::uint16_t, std::uint32_t>> {
};

TEST_P(Roundtrip, EncodeDecodePreservesPixels) {
  const auto [bits, rows_per_strip] = GetParam();
  const GrayImage img = gradient(37, 23, bits);
  const auto file = tiff::encode(img, rows_per_strip);
  const GrayImage back = tiff::decode(file);
  expect_images_equal(img, back);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndStrips, Roundtrip,
    ::testing::Combine(::testing::Values<std::uint16_t>(8, 16, 32),
                       ::testing::Values<std::uint32_t>(0, 1, 4, 23, 100)),
    [](const auto& info) {
      return "bits" + std::to_string(std::get<0>(info.param)) + "_rps" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Tiff, FloatSamplesRoundtrip) {
  const GrayImage img = gradient(16, 9, 32, SampleFormat::float_);
  const GrayImage back = tiff::decode(tiff::encode(img));
  expect_images_equal(img, back);
  EXPECT_DOUBLE_EQ(back.value(4, 2), 0.25 * 4 + 1.5 * 2);
}

TEST(Tiff, ValueAccessorsMatchBitDepth) {
  GrayImage img8 = GrayImage::zeros(4, 4, 8);
  img8.set_value(1, 2, 200);
  EXPECT_EQ(img8.value(1, 2), 200);
  img8.set_value(0, 0, 300);  // clamps to 255
  EXPECT_EQ(img8.value(0, 0), 255);

  GrayImage img16 = GrayImage::zeros(4, 4, 16);
  img16.set_value(3, 3, 40000);
  EXPECT_EQ(img16.value(3, 3), 40000);

  GrayImage img32 = GrayImage::zeros(4, 4, 32);
  img32.set_value(2, 1, 3e9);
  EXPECT_EQ(img32.value(2, 1), 3e9);
}

TEST(Tiff, BigEndianFilesDecode) {
  // Hand-build a tiny big-endian TIFF: 2x2, 16-bit, one strip.
  // Values: 0x0102 0x0304 / 0x0506 0x0708.
  std::vector<std::byte> f;
  auto b = [&](int v) { f.push_back(static_cast<std::byte>(v)); };
  // Header.
  b('M'); b('M'); b(0); b(42);
  b(0); b(0); b(0); b(16);  // IFD at offset 16
  // Pixel strip at offset 8 (big-endian samples).
  b(0x01); b(0x02); b(0x03); b(0x04);
  b(0x05); b(0x06); b(0x07); b(0x08);
  // IFD: 6 entries.
  b(0); b(6);
  auto entry = [&](int tag, int type, unsigned count, unsigned value,
                   bool short_inline) {
    b(tag >> 8); b(tag & 0xff);
    b(type >> 8); b(type & 0xff);
    b(static_cast<int>(count >> 24)); b(static_cast<int>((count >> 16) & 0xff));
    b(static_cast<int>((count >> 8) & 0xff)); b(static_cast<int>(count & 0xff));
    if (short_inline) {
      // SHORT value is left-justified in the 4-byte field.
      b(static_cast<int>((value >> 8) & 0xff)); b(static_cast<int>(value & 0xff));
      b(0); b(0);
    } else {
      b(static_cast<int>(value >> 24)); b(static_cast<int>((value >> 16) & 0xff));
      b(static_cast<int>((value >> 8) & 0xff)); b(static_cast<int>(value & 0xff));
    }
  };
  entry(256, 4, 1, 2, false);   // width
  entry(257, 4, 1, 2, false);   // height
  entry(258, 3, 1, 16, true);   // bits per sample
  entry(273, 4, 1, 8, false);   // strip offset
  entry(278, 4, 1, 2, false);   // rows per strip
  entry(279, 4, 1, 8, false);   // strip byte count
  b(0); b(0); b(0); b(0);       // next IFD

  const GrayImage img = tiff::decode(f);
  EXPECT_EQ(img.info().width, 2u);
  EXPECT_EQ(img.info().bits_per_sample, 16);
  EXPECT_EQ(img.value(0, 0), 0x0102);
  EXPECT_EQ(img.value(1, 0), 0x0304);
  EXPECT_EQ(img.value(0, 1), 0x0506);
  EXPECT_EQ(img.value(1, 1), 0x0708);
}

TEST(Tiff, RejectsMalformedInput) {
  EXPECT_THROW(tiff::decode({}), tiff::Error);

  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_THROW(tiff::decode(junk), tiff::Error);

  // Valid header, truncated body.
  const GrayImage img = gradient(8, 8, 8);
  auto file = tiff::encode(img);
  file.resize(file.size() / 2);
  EXPECT_THROW(tiff::decode(file), tiff::Error);
}

TEST(Tiff, RejectsWrongMagic) {
  std::vector<std::byte> f{std::byte{'I'}, std::byte{'I'}, std::byte{43},
                           std::byte{0},   std::byte{8},   std::byte{0},
                           std::byte{0},   std::byte{0}};
  EXPECT_THROW(tiff::decode(f), tiff::Error);
}

TEST(Tiff, FileIORoundtrip) {
  const auto dir = std::filesystem::temp_directory_path() / "ddr_tiff_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "img.tif").string();
  const GrayImage img = gradient(64, 48, 16);
  tiff::write_file(path, img, 7);
  const GrayImage back = tiff::read_file(path);
  expect_images_equal(img, back);
  std::filesystem::remove_all(dir);
}

TEST(Tiff, MissingFileThrows) {
  EXPECT_THROW(tiff::read_file("/nonexistent/nope.tif"), tiff::Error);
}

TEST(Tiff, SeriesWriterProducesNumberedSlices) {
  const auto dir = std::filesystem::temp_directory_path() / "ddr_tiff_series";
  std::filesystem::remove_all(dir);
  tiff::write_series(dir.string(), 5, [](int z) {
    GrayImage img = GrayImage::zeros(4, 4, 8);
    img.set_value(0, 0, z * 10);
    return img;
  });
  for (int z = 0; z < 5; ++z) {
    const GrayImage img = tiff::read_file(tiff::slice_path(dir.string(), z));
    EXPECT_EQ(img.value(0, 0), z * 10);
  }
  std::filesystem::remove_all(dir);
}

class TiledRoundtrip
    : public ::testing::TestWithParam<std::tuple<std::uint16_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(TiledRoundtrip, EncodeDecodePreservesPixels) {
  const auto [bits, tw, tl] = GetParam();
  // Deliberately non-multiple-of-tile dimensions to exercise edge padding.
  const GrayImage img = gradient(70, 41, bits);
  const auto file = tiff::encode_tiled(img, tw, tl);
  const GrayImage back = tiff::decode(file);
  expect_images_equal(img, back);
}

using TileCase = std::tuple<std::uint16_t, std::uint32_t, std::uint32_t>;
INSTANTIATE_TEST_SUITE_P(
    TileShapes, TiledRoundtrip,
    ::testing::Values(TileCase{8, 16, 16}, TileCase{16, 32, 16},
                      TileCase{32, 16, 32}, TileCase{8, 128, 128}),
    [](const auto& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Tiff, TiledExactMultipleDimensions) {
  const GrayImage img = gradient(64, 32, 16);
  const GrayImage back = tiff::decode(tiff::encode_tiled(img, 32, 16));
  expect_images_equal(img, back);
}

TEST(Tiff, TiledRejectsBadTileExtents) {
  const GrayImage img = gradient(32, 32, 8);
  EXPECT_THROW(tiff::encode_tiled(img, 0, 16), tiff::Error);
  EXPECT_THROW(tiff::encode_tiled(img, 17, 16), tiff::Error);
  EXPECT_THROW(tiff::encode_tiled(img, 16, 20), tiff::Error);
}

TEST(Tiff, TiledSingleTileCoversImage) {
  const GrayImage img = gradient(15, 9, 8);
  const auto file = tiff::encode_tiled(img, 16, 16);
  const GrayImage back = tiff::decode(file);
  expect_images_equal(img, back);
}

TEST(Tiff, ZerosFactoryValidates) {
  EXPECT_THROW(GrayImage::zeros(4, 4, 12), tiff::Error);
  EXPECT_THROW(GrayImage::zeros(4, 4, 16, SampleFormat::float_), tiff::Error);
}

TEST(Tiff, ConstructorRejectsWrongBufferSize) {
  tiff::ImageInfo info{4, 4, 8, SampleFormat::uint_};
  EXPECT_THROW(GrayImage(info, std::vector<std::byte>(3)), tiff::Error);
}

}  // namespace
