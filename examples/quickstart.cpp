// Quickstart: the paper's worked example E1 (Fig. 1, Algorithm 1, Table I).
//
// Four ranks share an 8x8 float domain. Before redistribution each rank owns
// two scattered 8x1 rows; afterwards each rank holds one contiguous 4x4
// quadrant. The program prints the before/after ownership grids of Fig. 1A,
// rank 0's send/receive map of Fig. 1B, and the parameter table (Table I).
//
// Run: ./quickstart

#include <array>
#include <cstdio>
#include <mutex>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"

namespace {

/// Ownership grid renderer: cell values are the owning rank.
void print_grid(const char* title, const ddr::GlobalLayout& layout,
                bool needed_side) {
  std::printf("%s\n", title);
  for (int y = 0; y < 8; ++y) {
    std::printf("  ");
    for (int x = 0; x < 8; ++x) {
      int owner = -1;
      for (int r = 0; r < layout.nranks(); ++r) {
        const auto in = [&](const ddr::Chunk& c) {
          return x >= c.offsets[0] && x < c.offsets[0] + c.dims[0] &&
                 y >= c.offsets[1] && y < c.offsets[1] + c.dims[1];
        };
        if (needed_side) {
          for (const auto& c : layout.needed[static_cast<std::size_t>(r)])
            if (in(c)) owner = r;
        } else {
          for (const auto& c : layout.owned[static_cast<std::size_t>(r)])
            if (in(c)) owner = r;
        }
      }
      std::printf("%d ", owner);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::mutex print_mutex;

  mpi::run(4, [&](mpi::Comm& comm) {
    const int rank = comm.rank();
    const int nprocs = comm.size();

    // --- Algorithm 1, line by line ---------------------------------------
    DDR_DataDescriptor* desc = DDR_NewDataDescriptor(
        nprocs, DDR_DATA_TYPE_2D, DDR_FLOAT, sizeof(float), comm);

    const int chunks_own = 2;
    const int dims_own[] = {8, 1, 8, 1};
    const int offsets_own[] = {0, rank, 0, rank + 4};
    const int right = rank % 2;
    const int bottom = rank / 2;
    const int dims_need[] = {4, 4};
    const int offsets_need[] = {4 * right, 4 * bottom};

    // data_own: rows `rank` and `rank + 4` of the global domain, where the
    // value of cell (x, y) is y*8 + x.
    std::vector<float> data_own(16), data_need(16, -1.0f);
    for (int x = 0; x < 8; ++x) {
      data_own[static_cast<std::size_t>(x)] = static_cast<float>(rank * 8 + x);
      data_own[static_cast<std::size_t>(8 + x)] =
          static_cast<float>((rank + 4) * 8 + x);
    }

    DDR_SetupDataMapping(rank, nprocs, chunks_own, dims_own, offsets_own,
                         dims_need, offsets_need, desc);
    DDR_ReorganizeData(nprocs, data_own.data(), data_need.data(), desc);

    // --- report -----------------------------------------------------------
    const ddr::Redistributor& engine = DDR_GetRedistributor(desc);
    if (rank == 0) {
      std::lock_guard lk(print_mutex);
      std::printf("E1: 2-D data redistribution on 4 ranks (paper Fig. 1)\n\n");
      print_grid("Fig. 1A left - ownership before redistribution:",
                 engine.global_layout(), false);
      std::printf("\n");
      print_grid("Fig. 1A right - ownership after redistribution:",
                 engine.global_layout(), true);

      std::printf("\nFig. 1B - data mapping for rank 0:\n");
      const auto transfers =
          ddr::enumerate_transfers(engine.global_layout(), sizeof(float));
      for (const auto& t : transfers) {
        if (t.sender == 0 && t.receiver != 0)
          std::printf("  send %s to rank %d (round %d, %lld B)\n",
                      t.region.describe().c_str(), t.receiver, t.round,
                      static_cast<long long>(t.bytes));
        if (t.receiver == 0 && t.sender != 0)
          std::printf("  recv %s from rank %d (round %d, %lld B)\n",
                      t.region.describe().c_str(), t.sender, t.round,
                      static_cast<long long>(t.bytes));
      }

      std::printf("\nTable I - DDR_SetupDataMapping parameters:\n");
      std::printf("  %-7s %-3s %-3s %-3s %-22s %-22s %-8s %-8s\n", "", "P1",
                  "P2", "P3", "P4", "P5", "P6", "P7");
    }
    comm.barrier();
    {
      std::lock_guard lk(print_mutex);
      std::printf(
          "  Rank %d  %-3d %-3d %-3d {[8,1],[8,1]}          "
          "{[0,%d],[0,%d]}          [4,4]    [%d,%d]\n",
          rank, rank, nprocs, chunks_own, rank, rank + 4, 4 * right,
          4 * bottom);
    }
    comm.barrier();
    {
      std::lock_guard lk(print_mutex);
      std::printf("\nrank %d received its %dx%d quadrant at (%d,%d):\n", rank,
                  dims_need[0], dims_need[1], offsets_need[0],
                  offsets_need[1]);
      for (int y = 0; y < 4; ++y) {
        std::printf("  ");
        for (int x = 0; x < 4; ++x)
          std::printf("%5.1f ", data_need[static_cast<std::size_t>(y * 4 + x)]);
        std::printf("\n");
      }
    }

    DDR_FreeDataDescriptor(desc);
  });
  return 0;
}
