// Use case B end-to-end (paper §IV-B, Figs. 4-5): in-transit visual analysis
// of a Lattice-Boltzmann simulation.
//
// One minimpi world of M+N ranks splits into M simulation ranks and N
// analysis ranks (the paper ran M=128, N=32 on Cooley; the example defaults
// to M=12, N=4 for a 1-core machine). Every OUTPUT_EVERY steps:
//   * each simulation rank streams its vorticity slab to its analysis rank
//     (Fig. 4 contiguous M-to-N mapping),
//   * each analysis rank DDR-redistributes the received slabs into its
//     near-square rectangle (Fig. 5),
//   * the frame is rendered with the blue-white-red colormap and saved as
//     JPEG; raw-vs-JPEG sizes are reported (the Table IV comparison).
//
// Run: ./lbm_insitu [output_dir]

#include <atomic>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "ddr/redistributor.hpp"
#include "image/colormap.hpp"
#include "jpegenc/jpeg.hpp"
#include "lbm/lbm.hpp"
#include "minimpi/minimpi.hpp"
#include "stream/stream.hpp"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  constexpr int kSimRanks = 12, kVizRanks = 4;
  constexpr int kNx = 240, kNy = 96;
  constexpr int kSteps = 400, kOutputEvery = 100;

  lbm::Params params;
  params.nx = kNx;
  params.ny = kNy;
  params.u0 = 0.1;
  params.viscosity = 0.02;
  params.barrier = lbm::Params::vertical_barrier(kNx / 4, kNy / 3,
                                                 2 * kNy / 3);

  const stream::MNMapping mapping(kSimRanks, kVizRanks);
  std::atomic<std::uint64_t> raw_bytes{0}, jpeg_bytes{0};

  std::printf("running %dx%d LBM on %d sim ranks, streaming to %d viz "
              "ranks, %d steps...\n",
              kNx, kNy, kSimRanks, kVizRanks, kSteps);

  mpi::run(kSimRanks + kVizRanks, [&](mpi::Comm& world) {
    const bool is_sim = world.rank() < kSimRanks;
    mpi::Comm group = world.split(is_sim ? 0 : 1, world.rank());

    if (is_sim) {
      // --- simulation side -------------------------------------------------
      lbm::DistributedLbm sim(group, params);
      stream::Producer out(world,
                           kSimRanks + mapping.consumer_of(group.rank()));
      for (int step = 1; step <= kSteps; ++step) {
        sim.step();
        if (step % kOutputEvery != 0) continue;
        const std::vector<float> vort = sim.local_vorticity();
        stream::FrameHeader h;
        h.step = step;
        h.y0 = sim.row_start(group.rank());
        h.ny = sim.row_start(group.rank() + 1) - sim.row_start(group.rank());
        h.nx = kNx;
        out.send_frame(h, vort);
      }
      return;
    }

    // --- analysis side --------------------------------------------------
    const int c = group.rank();
    const auto [lo, hi] = mapping.producers_of(c);
    std::vector<int> sources;
    for (int p = lo; p < hi; ++p) sources.push_back(p);
    stream::Consumer in(world, sources);

    const auto grid = stream::consumer_grid(kVizRanks, kNx, kNy);
    const ddr::Chunk rect = stream::consumer_rect(c, grid, kNx, kNy);
    if (c == 0)
      std::printf("analysis decomposition: %dx%d near-square grid "
                  "(rect 0 is %dx%d)\n",
                  grid[0], grid[1], rect.dims[0], rect.dims[1]);

    // The mapping is constant across frames: set up DDR once, reorganize
    // every frame (the paper's "dynamic data" workflow).
    ddr::Redistributor rd(group, sizeof(float));
    bool configured = false;
    std::vector<float> rect_data(static_cast<std::size_t>(rect.volume()));

    for (int frame = 0; frame < kSteps / kOutputEvery; ++frame) {
      const std::vector<stream::Frame> frames = in.receive_step();
      if (!configured) {
        rd.setup(stream::frames_layout(frames), rect);
        configured = true;
      }
      const std::vector<float> owned = stream::concat_frames(frames);
      rd.redistribute(std::as_bytes(std::span<const float>(owned)),
                      std::as_writable_bytes(std::span<float>(rect_data)));

      // Render the local rectangle with the paper's colormap.
      img::RgbImage tile(static_cast<std::uint32_t>(rect.dims[0]),
                         static_cast<std::uint32_t>(rect.dims[1]));
      const img::Colormap& cm = img::Colormap::blue_white_red();
      for (int y = 0; y < rect.dims[1]; ++y)
        for (int x = 0; x < rect.dims[0]; ++x)
          tile.at(static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)) =
              cm.map(rect_data[static_cast<std::size_t>(y * rect.dims[0] + x)],
                     -0.06, 0.06);

      // Gather tiles onto analysis rank 0 and save one JPEG per frame.
      const mpi::Datatype px = mpi::Datatype::bytes(sizeof(img::Rgb));
      if (c != 0) {
        group.send(tile.pixels().data(), tile.pixels().size(), px, 0, 50);
      } else {
        img::RgbImage full(kNx, kNy);
        auto paste = [&](const img::RgbImage& t, const ddr::Chunk& r) {
          for (int y = 0; y < r.dims[1]; ++y)
            for (int x = 0; x < r.dims[0]; ++x)
              full.at(static_cast<std::uint32_t>(r.offsets[0] + x),
                      static_cast<std::uint32_t>(r.offsets[1] + y)) =
                  t.at(static_cast<std::uint32_t>(x),
                       static_cast<std::uint32_t>(y));
        };
        paste(tile, rect);
        for (int q = 1; q < kVizRanks; ++q) {
          const ddr::Chunk r = stream::consumer_rect(q, grid, kNx, kNy);
          img::RgbImage t(static_cast<std::uint32_t>(r.dims[0]),
                          static_cast<std::uint32_t>(r.dims[1]));
          group.recv(t.pixels().data(), t.pixels().size(), px, q, 50);
          paste(t, r);
        }
        const std::string path =
            out_dir + "/lbm_frame_" + std::to_string(frame) + ".jpg";
        jpeg::write_file(path, full);
        const auto encoded = jpeg::encode(full);
        raw_bytes.fetch_add(static_cast<std::uint64_t>(kNx) * kNy *
                            sizeof(float));
        jpeg_bytes.fetch_add(encoded.size());
        std::printf("frame %d -> %s (%zu B)\n", frame, path.c_str(),
                    encoded.size());
      }
    }
  });

  if (raw_bytes.load() > 0) {
    const double reduction =
        100.0 * (1.0 - static_cast<double>(jpeg_bytes.load()) /
                           static_cast<double>(raw_bytes.load()));
    std::printf(
        "\nraw float output would be %llu B; JPEG frames total %llu B "
        "-> %.2f%% data reduction (paper Table IV reports ~99.5%% at full "
        "grid sizes)\n",
        static_cast<unsigned long long>(raw_bytes.load()),
        static_cast<unsigned long long>(jpeg_bytes.load()), reduction);
  }
  return 0;
}
