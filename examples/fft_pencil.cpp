// Distributed-FFT pencil transposes as a redistribution workload.
//
// A spectral solver on an NX x NY x NZ grid walks through three
// decompositions every timestep: slab (z split over all ranks, x/y local),
// y-pencil (x over p1, z over p2, y local) and z-pencil (x over p1, y over
// p2, z local). workloads::PencilTimestepper compiles the four transposes of
// one forward + inverse round trip ONCE and replays them per step — with no
// spectral transform the output must be byte-identical to the input, which
// this example checks after several steps.
//
// Along the way it prints the Table-III-style analytic accounting of each
// transpose (derived from closed-form block-interval arithmetic, independent
// of the mapping machinery), cross-checks it against ddr::compute_stats, and
// reports which backend the planner picked for each transpose under
// Backend::automatic.
//
// Run: ./fft_pencil

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <span>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"
#include "workloads/workloads.hpp"

namespace {

constexpr int kRanks = 4;
constexpr int kSteps = 3;

std::atomic<int> exit_code{0};
std::mutex print_mutex;

float cell_value(std::int64_t x, std::int64_t y, std::int64_t z) {
  return static_cast<float>(1000 * z + 10 * y + x) * 0.5f;
}

/// Fills a rank's slab buffer with the global oracle values its chunk
/// covers, x fastest.
void fill_slab(const ddr::Chunk& c, std::span<std::byte> out) {
  std::size_t off = 0;
  for (int z = 0; z < c.dims[2]; ++z)
    for (int y = 0; y < c.dims[1]; ++y)
      for (int x = 0; x < c.dims[0]; ++x) {
        const float v = cell_value(c.offsets[0] + x, c.offsets[1] + y,
                                   c.offsets[2] + z);
        std::memcpy(out.data() + off, &v, sizeof(float));
        off += sizeof(float);
      }
}

}  // namespace

int main() {
  const workloads::PencilParams params{16, 16, 16, kRanks, sizeof(float)};
  const workloads::PencilTranspose gen(params);

  {
    // Offline: analytic accounting vs. the geometric mapping machinery.
    std::printf("pencil transposes on %dx%dx%d over %d ranks (grid %dx%d)\n",
                params.nx, params.ny, params.nz, params.nranks, gen.p1(),
                gen.p2());
    const struct {
      workloads::Stage from, to;
    } hops[] = {
        {workloads::Stage::slab, workloads::Stage::pencil_y},
        {workloads::Stage::pencil_y, workloads::Stage::pencil_z},
    };
    for (const auto& h : hops) {
      const workloads::Accounting a = gen.accounting(h.from, h.to);
      const ddr::MappingStats s = ddr::compute_stats(
          gen.transpose_layout(h.from, h.to), params.elem_size);
      std::printf(
          "  %-8s -> %-8s  network %lld B  self %lld B  messages %lld\n",
          workloads::stage_name(h.from), workloads::stage_name(h.to),
          static_cast<long long>(a.network_bytes),
          static_cast<long long>(a.self_bytes),
          static_cast<long long>(a.messages));
      if (a.network_bytes != s.network_bytes || a.self_bytes != s.self_bytes) {
        std::printf("  MISMATCH vs compute_stats (network %lld, self %lld)\n",
                    static_cast<long long>(s.network_bytes),
                    static_cast<long long>(s.self_bytes));
        return 1;
      }
    }
  }

  mpi::run(kRanks, [&](mpi::Comm& comm) {
    ddr::SetupOptions opt;
    opt.backend = ddr::Backend::automatic;
    workloads::PencilTimestepper ts(comm, params, opt);

    std::vector<std::byte> slab(ts.slab_bytes());
    const ddr::Chunk mine = gen.chunk(workloads::Stage::slab, comm.rank());
    fill_slab(mine, slab);
    const std::vector<std::byte> initial = slab;

    ts.run(kSteps, slab);

    if (slab != initial) {
      std::lock_guard lk(print_mutex);
      std::printf("rank %d: round trip NOT byte-identical after %d steps\n",
                  comm.rank(), kSteps);
      exit_code.store(1);
      return;
    }
    if (comm.rank() == 0) {
      std::lock_guard lk(print_mutex);
      std::printf("%d steps (4 transposes each), round trip byte-identical\n",
                  kSteps);
      for (int t = 0; t < workloads::PencilTimestepper::kTransposesPerStep;
           ++t)
        std::printf("  transpose %d: planner chose %s\n", t,
                    ddr::backend_name(ts.transpose(t).effective_backend()));
    }
  });

  if (exit_code.load() == 0) std::printf("fft_pencil: OK\n");
  return exit_code.load();
}
