// Halo exchange expressed as a DDR redistribution, using the multi-chunk
// receive extension (the paper's §V future work, "support for more data
// patterns").
//
// A 2-D Jacobi heat-diffusion stencil runs on a 48x48 grid split into
// row-slabs across 4 ranks. Each iteration, instead of hand-written
// neighbour sends, every rank declares three needed chunks — its slab plus
// a one-row halo above and below — and calls redistribute() on the current
// field. The mapping is set up once; redistribute repeats per iteration
// (DDR's dynamic-data workflow). The result is verified against a serial
// run of the same stencil.
//
// Run: ./halo_exchange

#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "ddr/redistributor.hpp"
#include "minimpi/minimpi.hpp"

namespace {

constexpr int kNx = 48, kNy = 48;
constexpr int kRanks = 4;
constexpr int kIters = 60;

float initial(int x, int y) {
  // A hot square in the middle of a cold plate.
  return (x >= 18 && x < 30 && y >= 18 && y < 30) ? 100.0f : 0.0f;
}

/// One Jacobi step on rows [y0, y1) of `cur` (which carries a halo row on
/// each side when interior); fixed boundary at the plate edges.
void jacobi_rows(const std::vector<float>& padded, int padded_y0, int y0,
                 int y1, std::vector<float>& out) {
  for (int y = y0; y < y1; ++y) {
    for (int x = 0; x < kNx; ++x) {
      float v;
      if (x == 0 || x == kNx - 1 || y == 0 || y == kNy - 1) {
        v = padded[static_cast<std::size_t>((y - padded_y0) * kNx + x)];
      } else {
        auto at = [&](int xx, int yy) {
          return padded[static_cast<std::size_t>((yy - padded_y0) * kNx + xx)];
        };
        v = 0.25f * (at(x - 1, y) + at(x + 1, y) + at(x, y - 1) + at(x, y + 1));
      }
      out[static_cast<std::size_t>((y - y0) * kNx + x)] = v;
    }
  }
}

/// Serial reference for verification.
std::vector<float> serial_reference() {
  std::vector<float> cur(kNx * kNy), next(kNx * kNy);
  for (int y = 0; y < kNy; ++y)
    for (int x = 0; x < kNx; ++x)
      cur[static_cast<std::size_t>(y * kNx + x)] = initial(x, y);
  for (int it = 0; it < kIters; ++it) {
    jacobi_rows(cur, 0, 0, kNy, next);
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace

int main() {
  const std::vector<float> reference = serial_reference();
  std::vector<float> distributed(kNx * kNy, -1.0f);

  mpi::run(kRanks, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    const int rows = kNy / kRanks;
    const int y0 = rows * r;

    // Owned: my slab. Needed: halo row below + my slab + halo row above —
    // one redistribution call replaces both neighbour exchanges.
    const ddr::OwnedLayout own{ddr::Chunk::d2(kNx, rows, 0, y0)};
    ddr::NeededLayout need;
    const int pad_lo = r > 0 ? 1 : 0;
    const int pad_hi = r < kRanks - 1 ? 1 : 0;
    if (pad_lo) need.push_back(ddr::Chunk::d2(kNx, 1, 0, y0 - 1));
    need.push_back(ddr::Chunk::d2(kNx, rows, 0, y0));
    if (pad_hi) need.push_back(ddr::Chunk::d2(kNx, 1, 0, y0 + rows));

    ddr::Redistributor rd(comm, sizeof(float));
    ddr::SetupOptions opts;
    opts.backend = ddr::Backend::point_to_point;  // sparse: <= 2 peers
    rd.setup(own, need, opts);

    std::vector<float> slab(static_cast<std::size_t>(kNx) * rows);
    for (int y = 0; y < rows; ++y)
      for (int x = 0; x < kNx; ++x)
        slab[static_cast<std::size_t>(y * kNx + x)] = initial(x, y0 + y);

    std::vector<float> padded(rd.needed_bytes() / sizeof(float));
    for (int it = 0; it < kIters; ++it) {
      // One DDR call = full halo refresh (mapping reused every iteration).
      rd.redistribute(std::as_bytes(std::span<const float>(slab)),
                      std::as_writable_bytes(std::span<float>(padded)));
      jacobi_rows(padded, y0 - pad_lo, y0, y0 + rows, slab);
    }

    // Gather for verification.
    const mpi::Datatype f = mpi::Datatype::of<float>();
    comm.gather(slab.data(), slab.size(), f, distributed.data(), slab.size(),
                f, 0);
    if (r == 0) {
      float max_err = 0, center = 0;
      for (std::size_t i = 0; i < distributed.size(); ++i)
        max_err = std::max(max_err, std::abs(distributed[i] - reference[i]));
      center = distributed[static_cast<std::size_t>(24 * kNx + 24)];
      std::printf("halo-exchange-as-DDR: %d Jacobi iterations on %dx%d over "
                  "%d ranks\n", kIters, kNx, kNy, kRanks);
      std::printf("  max |distributed - serial| = %g (expect 0)\n", max_err);
      std::printf("  centre temperature after diffusion: %.3f\n", center);
      std::printf("  mapping: %d round(s), %.1f peers/rank, %lld transfers\n",
                  rd.rounds(), rd.stats().mean_send_peers,
                  static_cast<long long>(rd.stats().transfer_count));
      if (max_err != 0.0f) std::printf("  MISMATCH!\n");
    }
  });
  return 0;
}
