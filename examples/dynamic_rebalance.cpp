// Dynamic 1-D redistribution with the sparse point-to-point backend.
//
// A producer writes a time-series signal in uneven segments (rank r owns a
// segment whose size drifts every step — think adaptive sampling), while the
// consumer side always wants an even, load-balanced split. Because the
// layout changes each step, the mapping is re-set-up per step; because each
// rank only exchanges with a few neighbours, the example uses DDR's
// point-to-point backend (the paper's §V future-work optimization) and
// prints how many messages it saved compared to the dense alltoallw lanes.
//
// Run: ./dynamic_rebalance

#include <cmath>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <span>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"

namespace {

constexpr int kRanks = 6;
constexpr int kTotal = 6000;  // global samples
constexpr int kSteps = 5;

/// Uneven segment boundaries that drift with the step index.
std::vector<int> segment_bounds(int step) {
  std::vector<int> bounds{0};
  double acc = 0;
  std::vector<double> weights;
  for (int r = 0; r < kRanks; ++r) {
    weights.push_back(1.0 + 0.8 * std::sin(0.9 * r + 0.6 * step));
    acc += weights.back();
  }
  double cum = 0;
  for (int r = 0; r < kRanks - 1; ++r) {
    cum += weights[static_cast<std::size_t>(r)];
    bounds.push_back(static_cast<int>(kTotal * cum / acc));
  }
  bounds.push_back(kTotal);
  return bounds;
}

float signal(int i, int step) {
  return std::sin(0.002f * static_cast<float>(i)) +
         0.1f * static_cast<float>(step);
}

}  // namespace

int main() {
  std::mutex print_mutex;

  mpi::run(kRanks, [&](mpi::Comm& comm) {
    const int rank = comm.rank();
    // The consumer side is fixed: an even split.
    const int even = kTotal / kRanks;
    const ddr::Chunk need = ddr::Chunk::d1(even, even * rank);
    std::vector<float> balanced(static_cast<std::size_t>(even));

    for (int step = 0; step < kSteps; ++step) {
      const std::vector<int> bounds = segment_bounds(step);
      const int lo = bounds[static_cast<std::size_t>(rank)];
      const int hi = bounds[static_cast<std::size_t>(rank) + 1];

      // "New data arrives" in an uneven segment.
      std::vector<float> segment;
      for (int i = lo; i < hi; ++i) segment.push_back(signal(i, step));

      // Layout changed -> new mapping; transfers are sparse -> p2p backend.
      ddr::Redistributor rd(comm, sizeof(float));
      ddr::SetupOptions opts;
      opts.backend = ddr::Backend::point_to_point;
      rd.setup({ddr::Chunk::d1(hi - lo, lo)}, need, opts);
      rd.redistribute(std::as_bytes(std::span<const float>(segment)),
                      std::as_writable_bytes(std::span<float>(balanced)));

      // Verify and report.
      for (int i = 0; i < even; ++i) {
        const float expect = signal(even * rank + i, step);
        if (balanced[static_cast<std::size_t>(i)] != expect) {
          std::fprintf(stderr, "MISMATCH rank %d step %d i %d\n", rank, step,
                       i);
          return;
        }
      }
      if (rank == 0) {
        const auto& st = rd.stats();
        std::lock_guard lk(print_mutex);
        std::printf(
            "step %d: segments sized", step);
        for (int r = 0; r < kRanks; ++r)
          std::printf(" %d", bounds[static_cast<std::size_t>(r) + 1] -
                                 bounds[static_cast<std::size_t>(r)]);
        std::printf(
            "  ->  %lld sparse transfers vs %d dense alltoallw lanes "
            "(%.0f%% saved), %.1f peers/rank\n",
            static_cast<long long>(st.transfer_count),
            kRanks * (kRanks - 1) * st.rounds,
            100.0 * (1.0 - static_cast<double>(st.transfer_count) /
                               (kRanks * (kRanks - 1) * st.rounds)),
            st.mean_send_peers);
      }
      comm.barrier();
    }
    if (rank == 0)
      std::printf("all %d steps rebalanced and verified on %d ranks.\n",
                  kSteps, kRanks);
  });
  return 0;
}
