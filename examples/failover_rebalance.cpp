// Failover rebalancing: surviving a rank kill mid-simulation.
//
// Four ranks cycle a 1-D domain through DDR redistributions (the producer
// side owns fixed quarters, the consumer side wants the cyclically shifted
// quarters). Mid-run a fault plan kills rank 3 — the way a node loss looks
// to an MPI job. The survivors' next collective can never complete; instead
// of hanging the job forever, minimpi's deadlock watchdog raises
// mpi::ErrorClass::deadlock on every blocked survivor. The survivors then:
//
//   1. agree on the dead set (Comm::failed_ranks — no messages needed),
//   2. re-declare the surviving data and call the comm-less
//      Redistributor::rebuild(owned, needed): under
//      SetupOptions::rebuild_policy == RebuildPolicy::auto_shrink it heals
//      the communicator itself (Comm::shrink) and remaps in one step,
//   3. keep redistributing the surviving region.
//
// Run: ./failover_rebalance

#include <cstdio>
#include <mutex>
#include <span>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"
#include "simnet/faults.hpp"

namespace {

constexpr int kRanks = 4;
constexpr int kQuarter = 1024;  // elements owned per rank

float element(int i) { return 0.5f * static_cast<float>(i); }

}  // namespace

int main() {
  simnet::RankKillPlan kill_rank3({3});
  std::mutex print_mutex;
  int exit_code = 0;

  mpi::RunOptions opts;
  opts.fault = &kill_rank3;
  opts.deadlock_grace_s = 0.15;  // short grace: this is an interactive demo

  mpi::run(
      kRanks,
      [&](mpi::Comm& comm) {
        const int rank = comm.rank();
        ddr::Redistributor r(comm, sizeof(float));

        // Rank r owns [r*Q, (r+1)*Q); needs its right neighbour's quarter.
        const ddr::OwnedLayout own{ddr::Chunk::d1(kQuarter, kQuarter * rank)};
        const ddr::Chunk need =
            ddr::Chunk::d1(kQuarter, kQuarter * ((rank + 1) % kRanks));
        ddr::SetupOptions sopts;
        // Opt in to communicator-healing rebuilds: after a rank death,
        // rebuild(owned, needed) shrinks the communicator and remaps in one
        // call instead of making the caller juggle Comm::shrink herself.
        sopts.rebuild_policy = ddr::RebuildPolicy::auto_shrink;
        r.setup(own, need, sopts);

        std::vector<float> mine(kQuarter);
        for (int i = 0; i < kQuarter; ++i)
          mine[static_cast<std::size_t>(i)] = element(kQuarter * rank + i);
        std::vector<float> got(kQuarter, -1.0f);

        r.redistribute(std::as_bytes(std::span<const float>(mine)),
                       std::as_writable_bytes(std::span<float>(got)));
        if (rank == 0) {
          std::lock_guard lk(print_mutex);
          std::printf("step 0: all %d ranks redistributed their quarters\n",
                      kRanks);
        }

        // A node dies. Rank 3 arms its own death once it is fully out of
        // the barrier, so it deterministically dies at its first fault
        // checkpoint inside the next redistribution — were another rank to
        // arm the plan, rank 3 could die halfway through the barrier and
        // strand peers outside the try block below.
        comm.barrier();
        if (rank == 3) kill_rank3.arm();

        try {
          r.redistribute(std::as_bytes(std::span<const float>(mine)),
                         std::as_writable_bytes(std::span<float>(got)));
          // Rank 3 never gets here; if a survivor does, recovery is moot.
        } catch (const mpi::Error& e) {
          if (e.error_class() != mpi::ErrorClass::deadlock) throw;
          std::lock_guard lk(print_mutex);
          std::printf("rank %d: watchdog: %s\n", rank, e.what());
        }

        // Recovery on the survivors. Derive the post-shrink identity from
        // the dead set alone (survivors keep their order), declare the new
        // needed side, and let the comm-less rebuild heal + remap.
        const std::vector<int> dead = comm.failed_ranks();
        int new_rank = rank;
        for (int d : dead)
          if (d < rank) --new_rank;
        const int new_size = kRanks - static_cast<int>(dead.size());

        // The dead rank's quarter is gone; rebalance the surviving region
        // [0, 3*Q) with the same cyclic-shift pattern over three ranks.
        const ddr::Chunk new_need =
            ddr::Chunk::d1(kQuarter, kQuarter * ((new_rank + 1) % new_size));
        r.rebuild(own, new_need);
        {
          std::lock_guard lk(print_mutex);
          std::printf("rank %d: %zu rank(s) lost, continuing as %d/%d\n", rank,
                      dead.size(), r.comm().rank(), r.comm().size());
        }
        r.redistribute(std::as_bytes(std::span<const float>(mine)),
                       std::as_writable_bytes(std::span<float>(got)));

        // Verify: got must hold the neighbour's quarter of the element
        // sequence.
        const int base = kQuarter * ((new_rank + 1) % new_size);
        for (int i = 0; i < kQuarter; ++i)
          if (got[static_cast<std::size_t>(i)] != element(base + i)) {
            std::lock_guard lk(print_mutex);
            std::printf("rank %d: MISMATCH at %d\n", rank, i);
            exit_code = 1;
            return;
          }
        {
          std::lock_guard lk(print_mutex);
          std::printf("rank %d: post-failover redistribution verified\n",
                      rank);
        }
      },
      opts);

  if (exit_code == 0) std::printf("failover_rebalance: OK\n");
  return exit_code;
}
