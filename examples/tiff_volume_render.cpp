// Use case A end-to-end (paper §IV-A, Fig. 2): parallel visualization of a
// 3-D TIFF stack.
//
// 1. Generates a tooth-phantom TIFF series (stand-in for the APS CT scans).
// 2. Loads it on 8 ranks with DDR (consecutive strategy): each rank reads
//    1/8 of the slices, then DDR redistributes pixels into near-cubic DVR
//    bricks.
// 3. Ray-casts and composites a volume rendering with the dental colormap
//    and writes tooth.ppm + tooth.jpg.
// 4. Loads the same series with the No-DDR baseline and reports the
//    redundant-read counts that motivate the paper's Table II.
//
// Run: ./tiff_volume_render [output_dir]

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>

#include "dvr/dvr.hpp"
#include "image/colormap.hpp"
#include "image/png.hpp"
#include "jpegenc/jpeg.hpp"
#include "loader/tiff_loader.hpp"
#include "minimpi/minimpi.hpp"
#include "tiff/phantom.hpp"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::string series_dir =
      (std::filesystem::temp_directory_path() / "ddr_example_tooth").string();

  constexpr int kW = 96, kH = 96, kD = 96;
  constexpr int kRanks = 8;

  std::printf("generating %dx%dx%d tooth phantom series (16-bit TIFF)...\n",
              kW, kH, kD);
  std::filesystem::remove_all(series_dir);
  tiff::write_phantom_series(series_dir, kW, kH, kD, 16);

  loader::SeriesInfo series;
  series.dir = series_dir;
  series.width = kW;
  series.height = kH;
  series.depth = kD;
  series.bytes_per_sample = 2;
  series.max_sample_value = 65535.0;

  // --- DDR load + distributed render -------------------------------------
  std::atomic<int> ddr_reads{0};
  std::printf("loading with DDR (consecutive) on %d ranks...\n", kRanks);
  mpi::run(kRanks, [&](mpi::Comm& comm) {
    loader::LoadStats stats;
    const dvr::Brick brick = loader::load_brick(
        comm, series, loader::Strategy::ddr_consecutive, nullptr, &stats);
    ddr_reads.fetch_add(stats.images_read);

    dvr::TransferFunction tf;
    tf.colormap = &img::Colormap::tooth();
    tf.threshold = 0.18;
    tf.opacity_scale = 0.10;
    const img::RgbImage rendering = dvr::distributed_render(
        comm, brick, {kW, kH, kD}, dvr::Axis::y, tf);

    if (comm.rank() == 0) {
      rendering.write_ppm(out_dir + "/tooth.ppm");
      jpeg::write_file(out_dir + "/tooth.jpg", rendering);
      img::write_png(out_dir + "/tooth.png", rendering);
      std::printf("wrote %s/tooth.{ppm,jpg,png} (%ux%u)\n", out_dir.c_str(),
                  rendering.width(), rendering.height());
    }
  });

  // --- baseline comparison -------------------------------------------------
  std::atomic<int> baseline_reads{0};
  std::printf("loading the same series without DDR (baseline)...\n");
  mpi::run(kRanks, [&](mpi::Comm& comm) {
    loader::LoadStats stats;
    (void)loader::load_brick(comm, series, loader::Strategy::no_ddr, nullptr,
                             &stats);
    baseline_reads.fetch_add(stats.images_read);
  });

  std::printf(
      "\nfile reads: DDR = %d (each of the %d slices read once), "
      "baseline = %d (%.1fx redundant)\n",
      ddr_reads.load(), kD, baseline_reads.load(),
      static_cast<double>(baseline_reads.load()) / ddr_reads.load());
  std::printf("this redundancy is what Table II's ~25x load-time gap "
              "comes from at scale.\n");

  std::filesystem::remove_all(series_dir);
  return 0;
}
