// Elastic resize: growing a running job from 2 to 4 ranks and shrinking
// back, with movement-minimizing transactional redistribution.
//
// Two ranks own halves of a 1-D domain. Redistributor::resize_rebalance(4)
// grows the communicator (mpi::Comm::resize activates dormant rank slots,
// which enter through mpi::RunOptions::joiner_main and call
// Redistributor::resize_join), computes a balanced target layout that keeps
// the survivors' prefix bytes in place, ships only the overflow to the
// joiners, and commits the new layout transactionally — every member
// applies it, or every member rolls back. The job then shrinks back to 2:
// the retiring members' data is shipped to the keepers before they retire.
//
// The interesting number is bytes moved: growing M -> N only moves the data
// that changes owner (here half the domain), while a naive full re-scatter
// would move everything.
//
// Run: ./resize_rebalance

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <span>
#include <vector>

#include "ddr/ddr.hpp"
#include "minimpi/minimpi.hpp"

namespace {

constexpr int kTotal = 1024;  // domain elements
constexpr int kStart = 2;     // initial ranks
constexpr int kGrown = 4;     // ranks after the grow

float element(int i) { return 0.25f * static_cast<float>(i); }

std::atomic<int> exit_code{0};
std::mutex print_mutex;

/// Checks that a member's post-resize buffer holds exactly the domain
/// elements its new chunks cover, packed chunk by chunk.
bool verify(int rank, const ddr::OwnedLayout& owned,
            const std::vector<std::byte>& data) {
  std::size_t off = 0;
  for (const ddr::Chunk& c : owned) {
    for (std::int64_t i = 0; i < c.volume(); ++i) {
      float got = 0.0f;
      std::memcpy(&got, data.data() + off + static_cast<std::size_t>(i) * 4,
                  sizeof(float));
      const float want = element(static_cast<int>(c.offsets[0] + i));
      if (got != want) {
        std::lock_guard lk(print_mutex);
        std::printf("rank %d: MISMATCH at domain element %lld\n", rank,
                    static_cast<long long>(c.offsets[0] + i));
        exit_code.store(1);
        return false;
      }
    }
    off += static_cast<std::size_t>(c.volume()) * sizeof(float);
  }
  return true;
}

void report(const char* what, const ddr::ResizeOutcome& out) {
  std::lock_guard lk(print_mutex);
  std::printf(
      "%s: kept %lld bytes in place, moved %lld (naive re-scatter: %lld)\n",
      what, static_cast<long long>(out.stats.kept_bytes),
      static_cast<long long>(out.stats.moved_bytes),
      static_cast<long long>(out.stats.naive_bytes));
}

/// Every member of the grown communicator — survivor or joiner — verifies
/// its slice, then takes part in the shrink back to kStart ranks.
void continue_after_grow(ddr::ResizeOutcome grown) {
  if (!verify(grown.comm.rank(), grown.owned, grown.data)) return;
  if (grown.comm.rank() == 0) report("grow  2 -> 4", grown);

  ddr::Redistributor r(grown.comm, sizeof(float));
  const auto out = r.resize_rebalance(
      kStart, grown.owned, std::span<const std::byte>(grown.data));
  if (!out.committed) {
    exit_code.store(1);
    return;
  }
  if (out.retired) return;  // this member left the job with the shrink
  if (!verify(out.comm.rank(), out.owned, out.data)) return;
  if (out.comm.rank() == 0) report("shrink 4 -> 2", out);
}

}  // namespace

int main() {
  mpi::RunOptions opts;
  opts.max_ranks = kGrown;  // dormant slots resize_rebalance may activate
  opts.joiner_main = [](mpi::Comm& comm) {
    auto out = ddr::Redistributor::resize_join(comm, sizeof(float));
    if (!out.committed) {
      exit_code.store(1);
      return;
    }
    {
      std::lock_guard lk(print_mutex);
      std::printf("rank %d/%d joined and received %zu bytes\n",
                  out.comm.rank(), out.comm.size(), out.data.size());
    }
    continue_after_grow(std::move(out));
  };

  mpi::run(
      kStart,
      [](mpi::Comm& comm) {
        const int rank = comm.rank();
        const ddr::OwnedLayout own{
            ddr::Chunk::d1(kTotal / kStart, rank * (kTotal / kStart))};
        std::vector<float> data(kTotal / kStart);
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = element(rank * (kTotal / kStart) + static_cast<int>(i));

        ddr::Redistributor r(comm, sizeof(float));
        auto out = r.resize_rebalance(
            kGrown, own, std::as_bytes(std::span<const float>(data)));
        if (!out.committed) {
          exit_code.store(1);
          return;
        }
        continue_after_grow(std::move(out));
      },
      opts);

  if (exit_code.load() == 0) std::printf("resize_rebalance: OK\n");
  return exit_code.load();
}
